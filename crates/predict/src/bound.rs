//! Binomial confidence bounds on population quantiles from order statistics.
//!
//! This module is the direct implementation of the paper's §4.1 and
//! appendix: given `n` observations regarded as i.i.d. draws, the number of
//! them below the population quantile `X_q` is `Binomial(n, q)`, so an order
//! statistic with a suitable index is an upper (or lower) confidence bound
//! for `X_q` — with *no* distributional assumptions.

use qdelay_stats::binomial::Binomial;
use qdelay_stats::normal::std_normal_quantile;
use qdelay_telemetry::Counter;

/// Refits that reused the index cached for the current `n` outright.
static BOUND_INDEX_HIT: Counter = Counter::new("predict.bound_index.hit");
/// Refits that advanced a cached exact index by the O(1)-per-step walk.
static BOUND_INDEX_CARRY: Counter = Counter::new("predict.bound_index.carry_forward");
/// Refits served by the O(1) CLT closed form (large-`n` region of `Auto`).
static BOUND_INDEX_APPROX: Counter = Counter::new("predict.bound_index.approx");
/// Refits that paid a fresh `O(log n)` exact binomial-CDF inversion.
static BOUND_INDEX_MISS: Counter = Counter::new("predict.bound_index.miss");

/// The target of a bound computation: which quantile, at what confidence.
///
/// # Examples
///
/// ```
/// use qdelay_predict::bound::BoundSpec;
/// let spec = BoundSpec::new(0.95, 0.95)?;
/// assert_eq!(spec.min_history_upper(), 59); // paper section 4.1
/// # Ok::<(), qdelay_predict::PredictError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundSpec {
    quantile: f64,
    confidence: f64,
}

impl BoundSpec {
    /// Creates a bound specification.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PredictError`] unless both `quantile` and
    /// `confidence` lie strictly inside `(0, 1)`.
    pub fn new(quantile: f64, confidence: f64) -> Result<Self, crate::PredictError> {
        if !(quantile > 0.0 && quantile < 1.0 && confidence > 0.0 && confidence < 1.0) {
            return Err(crate::PredictError::invalid_config(format!(
                "quantile and confidence must be in (0,1), got q={quantile}, C={confidence}"
            )));
        }
        Ok(Self {
            quantile,
            confidence,
        })
    }

    /// The paper's headline specification: 95%-confidence bound on the 0.95
    /// quantile.
    pub fn paper_default() -> Self {
        Self {
            quantile: 0.95,
            confidence: 0.95,
        }
    }

    /// The target quantile `q`.
    pub fn quantile(&self) -> f64 {
        self.quantile
    }

    /// The confidence level `C`.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Minimum sample size from which an *upper* bound exists.
    ///
    /// An upper bound requires `P[Bin(n, q) <= n-1] >= C`, i.e.
    /// `1 - q^n >= C`, giving `n >= ln(1-C)/ln(q)`. For the paper's 95/95
    /// specification this is 59 (§4.1).
    pub fn min_history_upper(&self) -> usize {
        ((1.0 - self.confidence).ln() / self.quantile.ln()).ceil() as usize
    }

    /// Minimum sample size from which a *lower* bound exists.
    ///
    /// A lower bound requires `P[Bin(n, q) >= 1] >= C`, i.e.
    /// `1 - (1-q)^n >= C`.
    pub fn min_history_lower(&self) -> usize {
        ((1.0 - self.confidence).ln() / (1.0 - self.quantile).ln()).ceil() as usize
    }
}

impl Default for BoundSpec {
    /// The paper's 95/95 specification.
    fn default() -> Self {
        Self::paper_default()
    }
}

/// How the order-statistic index is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundMethod {
    /// Exact binomial CDF inversion below [`BoundMethod::AUTO_THRESHOLD`]
    /// expected successes/failures, CLT approximation above — the paper's
    /// appendix strategy.
    #[default]
    Auto,
    /// Always invert the exact binomial CDF.
    Exact,
    /// Always use the normal approximation
    /// `k = ceil(n q + z_C sqrt(n q (1-q)))` (requires the approximation to
    /// be in range; falls back to exact at tiny `n`).
    Approx,
}

impl BoundMethod {
    /// Expected-count threshold above which `Auto` switches to the CLT
    /// approximation (the appendix suggests 10).
    pub const AUTO_THRESHOLD: f64 = 10.0;
}

/// Result of asking for a bound from a finite sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundOutcome {
    /// A bound was produced.
    Bound(f64),
    /// The sample is too small for the requested spec; `needed` is the
    /// minimum sample size at which a bound becomes available.
    InsufficientHistory {
        /// Minimum number of observations required.
        needed: usize,
    },
}

impl BoundOutcome {
    /// The bound value, if one was produced.
    pub fn value(&self) -> Option<f64> {
        match self {
            Self::Bound(v) => Some(*v),
            Self::InsufficientHistory { .. } => None,
        }
    }
}

/// 1-indexed order-statistic index for an **upper** confidence bound on the
/// `q` quantile, or `None` if `n` is too small.
///
/// The index is the smallest `k` with `P[Bin(n, q) <= k-1] >= C`; then the
/// `k`-th smallest observation bounds `X_q` from above with confidence `C`
/// (paper appendix, equation 3).
///
/// # Examples
///
/// ```
/// use qdelay_predict::bound::{upper_index, BoundMethod, BoundSpec};
/// let spec = BoundSpec::paper_default();
/// // The appendix's worked example: n = 1000, q = 0.9, C = 0.95 -> k = 916.
/// let spec2 = BoundSpec::new(0.9, 0.95)?;
/// assert_eq!(upper_index(1000, spec2, BoundMethod::Approx), Some(916));
/// assert_eq!(upper_index(58, spec, BoundMethod::Exact), None);
/// assert_eq!(upper_index(59, spec, BoundMethod::Exact), Some(59));
/// # Ok::<(), qdelay_predict::PredictError>(())
/// ```
pub fn upper_index(n: usize, spec: BoundSpec, method: BoundMethod) -> Option<usize> {
    if n == 0 {
        return None;
    }
    let q = spec.quantile();
    let use_approx = match method {
        BoundMethod::Exact => false,
        BoundMethod::Approx => true,
        BoundMethod::Auto => {
            let nf = n as f64;
            nf * q >= BoundMethod::AUTO_THRESHOLD && nf * (1.0 - q) >= BoundMethod::AUTO_THRESHOLD
        }
    };
    let k = if use_approx {
        let nf = n as f64;
        let z = std_normal_quantile(spec.confidence());
        let raw = (nf * q + z * (nf * q * (1.0 - q)).sqrt()).ceil();
        if raw < 1.0 {
            1
        } else {
            raw as usize
        }
    } else {
        let b = Binomial::new(n as u64, q).expect("validated quantile");
        b.quantile(spec.confidence()) as usize + 1
    };
    if k > n {
        None
    } else {
        Some(k)
    }
}

/// 1-indexed order-statistic index for a **lower** confidence bound on the
/// `q` quantile, or `None` if `n` is too small.
///
/// The index is the largest `k` with `P[Bin(n, q) >= k] >= C`, i.e. the
/// largest `k` with `P[Bin(n, q) <= k-1] <= 1 - C`.
pub fn lower_index(n: usize, spec: BoundSpec, method: BoundMethod) -> Option<usize> {
    if n == 0 {
        return None;
    }
    let q = spec.quantile();
    let use_approx = match method {
        BoundMethod::Exact => false,
        BoundMethod::Approx => true,
        BoundMethod::Auto => {
            let nf = n as f64;
            nf * q >= BoundMethod::AUTO_THRESHOLD && nf * (1.0 - q) >= BoundMethod::AUTO_THRESHOLD
        }
    };
    if use_approx {
        let nf = n as f64;
        let z = std_normal_quantile(spec.confidence());
        let raw = (nf * q - z * (nf * q * (1.0 - q)).sqrt()).floor();
        if raw < 1.0 {
            None
        } else {
            Some(raw as usize)
        }
    } else {
        let b = Binomial::new(n as u64, q).expect("validated quantile");
        // Largest k-1 with cdf(k-1) <= 1 - C.
        let target = 1.0 - spec.confidence();
        if b.cdf(0) > target {
            return None; // even k = 1 fails
        }
        // quantile(target) is the smallest m with cdf(m) >= target; walk to
        // the largest m with cdf(m) <= target.
        let mut m = b.quantile(target);
        if b.cdf(m) > target {
            if m == 0 {
                return None;
            }
            m -= 1;
        }
        Some(m as usize + 1)
    }
}

/// Upper confidence bound on the `q` quantile from a sorted sample.
///
/// # Panics
///
/// Panics (in debug builds) if `sorted` is not ascending.
pub fn upper_bound(sorted: &[f64], spec: BoundSpec, method: BoundMethod) -> BoundOutcome {
    debug_assert!(is_sorted(sorted), "input must be sorted ascending");
    match upper_index(sorted.len(), spec, method) {
        Some(k) => BoundOutcome::Bound(sorted[k - 1]),
        None => BoundOutcome::InsufficientHistory {
            needed: spec.min_history_upper(),
        },
    }
}

/// Lower confidence bound on the `q` quantile from a sorted sample.
///
/// # Panics
///
/// Panics (in debug builds) if `sorted` is not ascending.
pub fn lower_bound(sorted: &[f64], spec: BoundSpec, method: BoundMethod) -> BoundOutcome {
    debug_assert!(is_sorted(sorted), "input must be sorted ascending");
    match lower_index(sorted.len(), spec, method) {
        Some(k) => BoundOutcome::Bound(sorted[k - 1]),
        None => BoundOutcome::InsufficientHistory {
            needed: spec.min_history_lower(),
        },
    }
}

fn is_sorted(xs: &[f64]) -> bool {
    xs.windows(2).all(|w| w[0] <= w[1])
}

/// Memoized bound-index lookups for a fixed `(spec, method)` pair.
///
/// Predictors ask for the same index on every refit, but `n` only changes
/// when an observation arrives or the history is trimmed. The cache
/// recomputes only when `n` changes, and exploits the monotonicity of the
/// index in `n` — `k(n) <= k(n+1) <= k(n) + 1` — to *carry forward* the
/// exact-method index with one O(1) binomial CDF check per intervening `n`,
/// instead of a fresh `O(log n)`-CDF-evaluation inversion.
///
/// # Examples
///
/// ```
/// use qdelay_predict::bound::{upper_index, BoundIndexCache, BoundMethod, BoundSpec};
/// let spec = BoundSpec::paper_default();
/// let mut cache = BoundIndexCache::new(spec, BoundMethod::Exact);
/// for n in 0..500 {
///     assert_eq!(cache.upper_index(n), upper_index(n, spec, BoundMethod::Exact));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct BoundIndexCache {
    spec: BoundSpec,
    method: BoundMethod,
    upper: Option<(usize, Option<usize>)>,
    lower: Option<(usize, Option<usize>)>,
}

/// Beyond this gap the carry-forward walk costs more than a fresh binary
/// inversion, so the cache recomputes from scratch.
const CARRY_FORWARD_LIMIT: usize = 64;

impl BoundIndexCache {
    /// Creates an empty cache for a spec/method pair.
    pub fn new(spec: BoundSpec, method: BoundMethod) -> Self {
        Self {
            spec,
            method,
            upper: None,
            lower: None,
        }
    }

    /// The spec this cache serves.
    pub fn spec(&self) -> BoundSpec {
        self.spec
    }

    /// The method this cache serves.
    pub fn method(&self) -> BoundMethod {
        self.method
    }

    /// Whether `method` resolves to the CLT approximation at this `n`.
    fn resolves_to_approx(&self, n: usize) -> bool {
        let q = self.spec.quantile();
        match self.method {
            BoundMethod::Exact => false,
            BoundMethod::Approx => true,
            BoundMethod::Auto => {
                let nf = n as f64;
                nf * q >= BoundMethod::AUTO_THRESHOLD
                    && nf * (1.0 - q) >= BoundMethod::AUTO_THRESHOLD
            }
        }
    }

    /// Cached [`upper_index`] for sample size `n`.
    pub fn upper_index(&mut self, n: usize) -> Option<usize> {
        if let Some((cached_n, k)) = self.upper {
            if cached_n == n {
                BOUND_INDEX_HIT.incr();
                return k;
            }
        }
        let k = self.fresh_or_carried_upper(n);
        debug_assert_eq!(k, upper_index(n, self.spec, self.method));
        self.upper = Some((n, k));
        k
    }

    fn fresh_or_carried_upper(&self, n: usize) -> Option<usize> {
        // The approximation is a closed form — O(1), nothing to carry.
        // The Auto exact region is a prefix of n (expected counts grow with
        // n), so `prev_n < n` both resolving to exact means every
        // intervening size did too, and the step walk below is valid.
        if self.resolves_to_approx(n) {
            BOUND_INDEX_APPROX.incr();
            return upper_index(n, self.spec, self.method);
        }
        if let Some((prev_n, Some(mut k))) = self.upper {
            if prev_n < n
                && n - prev_n <= CARRY_FORWARD_LIMIT
                && !self.resolves_to_approx(prev_n)
            {
                BOUND_INDEX_CARRY.incr();
                let q = self.spec.quantile();
                let c = self.spec.confidence();
                for m in prev_n + 1..=n {
                    // k(m) is k(m-1) or k(m-1) + 1; one CDF check decides.
                    let b = Binomial::new(m as u64, q).expect("validated quantile");
                    if b.cdf((k - 1) as u64) < c {
                        k += 1;
                    }
                }
                return if k > n { None } else { Some(k) };
            }
        }
        BOUND_INDEX_MISS.incr();
        upper_index(n, self.spec, self.method)
    }

    /// Cached [`lower_index`] for sample size `n` (memoized on `n`; the
    /// lower index is off the refit hot path, so no carry-forward).
    pub fn lower_index(&mut self, n: usize) -> Option<usize> {
        if let Some((cached_n, k)) = self.lower {
            if cached_n == n {
                return k;
            }
        }
        let k = lower_index(n, self.spec, self.method);
        self.lower = Some((n, k));
        k
    }

    /// Drops all cached entries (e.g. after reconfiguring the predictor).
    pub fn invalidate(&mut self) {
        self.upper = None;
        self.lower = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation() {
        assert!(BoundSpec::new(0.0, 0.95).is_err());
        assert!(BoundSpec::new(1.0, 0.95).is_err());
        assert!(BoundSpec::new(0.95, 0.0).is_err());
        assert!(BoundSpec::new(0.95, 1.0).is_err());
        assert!(BoundSpec::new(0.5, 0.5).is_ok());
    }

    #[test]
    fn paper_minimums() {
        let spec = BoundSpec::paper_default();
        assert_eq!(spec.min_history_upper(), 59);
        // Lower bound on the .25 quantile at 95% confidence needs 11 obs:
        // (1 - .25)^11 < .05 <= (1 - .25)^10.
        let spec25 = BoundSpec::new(0.25, 0.95).unwrap();
        assert_eq!(spec25.min_history_lower(), 11);
    }

    #[test]
    fn appendix_worked_example() {
        // n = 1000, q = 0.9, C = 0.95: sample .9 quantile is x_(900), move up
        // 1.645*sqrt(1000*.9*.1) ~ 15.6 -> x_(916).
        let spec = BoundSpec::new(0.9, 0.95).unwrap();
        assert_eq!(upper_index(1000, spec, BoundMethod::Approx), Some(916));
        // Exact differs from the CLT by at most 1 order statistic here.
        let exact = upper_index(1000, spec, BoundMethod::Exact).unwrap();
        assert!((exact as i64 - 916).unsigned_abs() <= 1, "exact = {exact}");
    }

    #[test]
    fn exact_index_is_minimal() {
        let spec = BoundSpec::paper_default();
        for n in [59usize, 80, 200, 1000] {
            let k = upper_index(n, spec, BoundMethod::Exact).unwrap();
            let b = Binomial::new(n as u64, 0.95).unwrap();
            assert!(b.cdf((k - 1) as u64) >= 0.95);
            assert!(b.cdf((k - 2) as u64) < 0.95, "k not minimal at n={n}");
        }
    }

    #[test]
    fn lower_index_is_maximal() {
        let spec = BoundSpec::new(0.25, 0.95).unwrap();
        for n in [11usize, 20, 100, 500] {
            let k = lower_index(n, spec, BoundMethod::Exact).unwrap();
            let b = Binomial::new(n as u64, 0.25).unwrap();
            // P[Bin >= k] >= C  <=>  cdf(k-1) <= 1-C
            assert!(b.cdf((k - 1) as u64) <= 0.05000000001);
            // k+1 would violate.
            assert!(b.cdf(k as u64) > 0.05, "k not maximal at n={n}");
        }
    }

    #[test]
    fn insufficient_history_reports_requirement() {
        let spec = BoundSpec::paper_default();
        let sample: Vec<f64> = (0..58).map(|i| i as f64).collect();
        match upper_bound(&sample, spec, BoundMethod::Exact) {
            BoundOutcome::InsufficientHistory { needed } => assert_eq!(needed, 59),
            BoundOutcome::Bound(_) => panic!("expected insufficient history"),
        }
    }

    #[test]
    fn at_exactly_59_bound_is_maximum() {
        // With n = 59 the 95/95 upper bound is the sample maximum.
        let spec = BoundSpec::paper_default();
        let sample: Vec<f64> = (0..59).map(|i| i as f64).collect();
        assert_eq!(
            upper_bound(&sample, spec, BoundMethod::Exact),
            BoundOutcome::Bound(58.0)
        );
    }

    #[test]
    fn approx_and_exact_agree_at_scale() {
        let spec = BoundSpec::paper_default();
        for n in [500usize, 5_000, 50_000, 350_000] {
            let e = upper_index(n, spec, BoundMethod::Exact).unwrap();
            let a = upper_index(n, spec, BoundMethod::Approx).unwrap();
            assert!(
                (e as i64 - a as i64).unsigned_abs() <= 2,
                "n={n}: exact {e} vs approx {a}"
            );
        }
    }

    #[test]
    fn auto_picks_exact_for_small_samples() {
        // n = 100, q = .95: n(1-q) = 5 < 10, so Auto must use the exact path.
        let spec = BoundSpec::paper_default();
        assert_eq!(
            upper_index(100, spec, BoundMethod::Auto),
            upper_index(100, spec, BoundMethod::Exact)
        );
        // Large n: Auto follows the approximation.
        assert_eq!(
            upper_index(100_000, spec, BoundMethod::Auto),
            upper_index(100_000, spec, BoundMethod::Approx)
        );
    }

    #[test]
    fn bounds_are_monotone_in_confidence() {
        let sample: Vec<f64> = (0..500).map(|i| (i as f64).powf(1.3)).collect();
        let mut prev = f64::NEG_INFINITY;
        for c in [0.5, 0.8, 0.9, 0.95, 0.99] {
            let spec = BoundSpec::new(0.9, c).unwrap();
            let v = upper_bound(&sample, spec, BoundMethod::Exact)
                .value()
                .unwrap();
            assert!(v >= prev, "bound must grow with confidence");
            prev = v;
        }
    }

    #[test]
    fn bounds_are_monotone_in_quantile() {
        let sample: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let mut prev = f64::NEG_INFINITY;
        for q in [0.5, 0.75, 0.9, 0.95] {
            let spec = BoundSpec::new(q, 0.9).unwrap();
            let v = upper_bound(&sample, spec, BoundMethod::Exact)
                .value()
                .unwrap();
            assert!(v >= prev, "bound must grow with quantile");
            prev = v;
        }
    }

    #[test]
    fn lower_bound_below_upper_bound() {
        let sample: Vec<f64> = (0..300).map(|i| (i as f64) * 2.0).collect();
        let spec = BoundSpec::new(0.5, 0.95).unwrap();
        let lo = lower_bound(&sample, spec, BoundMethod::Exact).value().unwrap();
        let hi = upper_bound(&sample, spec, BoundMethod::Exact).value().unwrap();
        assert!(lo < hi);
        // Both straddle the sample median.
        let med = qdelay_stats::describe::quantile(&sample, 0.5).unwrap();
        assert!(lo <= med && med <= hi);
    }

    #[test]
    fn empty_sample_yields_insufficient() {
        let spec = BoundSpec::paper_default();
        assert!(upper_bound(&[], spec, BoundMethod::Auto).value().is_none());
        assert!(lower_bound(&[], spec, BoundMethod::Auto).value().is_none());
    }

    #[test]
    fn cache_matches_direct_across_min_history_crossing() {
        // n walking 0 -> 200 crosses min_history_upper() = 59 for 95/95:
        // the cache must flip from None to Some exactly where the direct
        // computation does.
        for method in [BoundMethod::Exact, BoundMethod::Auto, BoundMethod::Approx] {
            let spec = BoundSpec::paper_default();
            let mut cache = BoundIndexCache::new(spec, method);
            for n in 0..200 {
                assert_eq!(
                    cache.upper_index(n),
                    upper_index(n, spec, method),
                    "n = {n}, method = {method:?}"
                );
            }
            assert_eq!(cache.upper_index(58), upper_index(58, spec, method));
            assert_eq!(cache.upper_index(59), upper_index(59, spec, method));
        }
    }

    #[test]
    fn cache_survives_changepoint_trim_shrink() {
        // A change-point trim snaps n from large back to 59; the cache must
        // recompute rather than carry a stale large-n index.
        let spec = BoundSpec::paper_default();
        let mut cache = BoundIndexCache::new(spec, BoundMethod::Auto);
        assert_eq!(cache.upper_index(5000), upper_index(5000, spec, BoundMethod::Auto));
        assert_eq!(cache.upper_index(59), Some(59));
        // Regrow one observation at a time (the post-trim refit pattern).
        for n in 60..200 {
            assert_eq!(cache.upper_index(n), upper_index(n, spec, BoundMethod::Auto));
        }
    }

    #[test]
    fn cache_carry_forward_spans_gaps() {
        // Jumps smaller and larger than the carry-forward limit, repeated
        // queries at the same n, and non-monotone n sequences.
        let spec = BoundSpec::new(0.9, 0.95).unwrap();
        let mut cache = BoundIndexCache::new(spec, BoundMethod::Exact);
        for n in [30usize, 31, 40, 90, 90, 500, 501, 499, 1000, 64, 65] {
            assert_eq!(cache.upper_index(n), upper_index(n, spec, BoundMethod::Exact), "n = {n}");
        }
    }

    #[test]
    fn cache_exact_and_approx_agree_at_large_n() {
        let spec = BoundSpec::paper_default();
        let mut exact = BoundIndexCache::new(spec, BoundMethod::Exact);
        let mut approx = BoundIndexCache::new(spec, BoundMethod::Approx);
        for n in [10_000usize, 10_001, 10_002, 100_000, 350_000] {
            let e = exact.upper_index(n).unwrap();
            let a = approx.upper_index(n).unwrap();
            assert!(
                (e as i64 - a as i64).unsigned_abs() <= 2,
                "n = {n}: exact {e} vs approx {a}"
            );
        }
    }

    #[test]
    fn cache_lower_index_memoizes_correctly() {
        let spec = BoundSpec::new(0.25, 0.95).unwrap();
        let mut cache = BoundIndexCache::new(spec, BoundMethod::Exact);
        for n in [0usize, 5, 11, 11, 12, 100, 50, 500] {
            assert_eq!(cache.lower_index(n), lower_index(n, spec, BoundMethod::Exact), "n = {n}");
        }
        cache.invalidate();
        assert_eq!(cache.lower_index(100), lower_index(100, spec, BoundMethod::Exact));
    }
}
