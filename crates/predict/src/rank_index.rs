//! Chunked order-statistic index over a multiset of `f64` samples.
//!
//! [`RankIndex`] stores values in a sequence of sorted blocks of bounded
//! size, giving `O(log n + √n)` insert and remove (binary search to find the
//! block, memmove within one block only) and `O(√n)` selection of the k-th
//! smallest element — versus the `O(n)` memmove per insert of a single
//! sorted `Vec`. It exists to back
//! [`HistoryBuffer`](crate::history::HistoryBuffer), whose per-job cost
//! dominates million-job trace replays.
//!
//! Values must not be NaN (enforced by debug assertions); `HistoryBuffer`
//! validates before inserting.
//!
//! # Examples
//!
//! ```
//! use qdelay_predict::rank_index::RankIndex;
//!
//! let mut idx = RankIndex::new();
//! for w in [30.0, 5.0, 120.0, 5.0] {
//!     idx.insert(w);
//! }
//! assert_eq!(idx.len(), 4);
//! assert_eq!(idx.select(0), Some(5.0));   // minimum
//! assert_eq!(idx.select(3), Some(120.0)); // maximum
//! assert!(idx.remove_one(5.0));
//! assert_eq!(idx.to_vec(), vec![5.0, 30.0, 120.0]);
//! ```

/// Target block size. Splits happen at `2 * BLOCK_CAP`, so blocks hold
/// between `BLOCK_CAP / 2` (after a split) and `2 * BLOCK_CAP` elements and
/// a memmove never touches more than `2 * BLOCK_CAP` slots. 512 keeps a
/// block within a few cache lines' worth of pages while the block directory
/// stays small (a 1M-sample history has ~1000 blocks).
const BLOCK_CAP: usize = 512;

/// A multiset of `f64` values supporting sorted-order queries, implemented
/// as a list of sorted blocks.
#[derive(Debug, Clone, Default)]
pub struct RankIndex {
    /// Non-empty sorted blocks; block `i`'s last element <= block `i+1`'s
    /// first element.
    blocks: Vec<Vec<f64>>,
    len: usize,
}

impl RankIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored values (counting duplicates).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every value.
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.len = 0;
    }

    /// Index of the block that should hold `value`: the first block whose
    /// last element is `>= value`, or the final block.
    fn block_for(&self, value: f64) -> usize {
        let i = self
            .blocks
            .partition_point(|b| *b.last().expect("blocks are non-empty") < value);
        i.min(self.blocks.len().saturating_sub(1))
    }

    /// Inserts a value, keeping the multiset ordered.
    ///
    /// Cost: `O(log n)` to locate the block plus a memmove within a single
    /// block (`O(BLOCK_CAP)`).
    pub fn insert(&mut self, value: f64) {
        debug_assert!(!value.is_nan(), "RankIndex does not admit NaN");
        if self.blocks.is_empty() {
            self.blocks.push(vec![value]);
            self.len = 1;
            return;
        }
        let bi = self.block_for(value);
        let block = &mut self.blocks[bi];
        let pos = block.partition_point(|&x| x < value);
        block.insert(pos, value);
        self.len += 1;
        if block.len() >= 2 * BLOCK_CAP {
            let tail = block.split_off(block.len() / 2);
            self.blocks.insert(bi + 1, tail);
        }
    }

    /// Removes one occurrence of `value`, returning whether it was present.
    ///
    /// Equal values are indistinguishable, so any one occurrence may be the
    /// one removed.
    pub fn remove_one(&mut self, value: f64) -> bool {
        if self.blocks.is_empty() {
            return false;
        }
        let bi = self.block_for(value);
        let block = &mut self.blocks[bi];
        let pos = block.partition_point(|&x| x < value);
        if pos >= block.len() || block[pos] != value {
            return false;
        }
        block.remove(pos);
        self.len -= 1;
        if block.is_empty() {
            self.blocks.remove(bi);
        }
        true
    }

    /// The `k`-th smallest value, 0-indexed (`select(0)` is the minimum).
    ///
    /// Cost: `O(n / BLOCK_CAP)` — a walk over the block directory.
    pub fn select(&self, k: usize) -> Option<f64> {
        if k >= self.len {
            return None;
        }
        let mut remaining = k;
        for block in &self.blocks {
            if remaining < block.len() {
                return Some(block[remaining]);
            }
            remaining -= block.len();
        }
        unreachable!("k < len implies some block holds it")
    }

    /// Iterates over the values in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.blocks.iter().flatten().copied()
    }

    /// Copies the values into an ascending `Vec`.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len);
        out.extend(self.iter());
        out
    }

    /// Rebuilds the index from an arbitrary iterator of values — `O(n log n)`,
    /// used after bulk trims where incremental removal would be slower.
    pub fn rebuild<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        let mut all: Vec<f64> = values.into_iter().collect();
        debug_assert!(all.iter().all(|x| !x.is_nan()));
        all.sort_by(|a, b| a.partial_cmp(b).expect("no NaN stored"));
        self.len = all.len();
        self.blocks.clear();
        for chunk in all.chunks(BLOCK_CAP) {
            self.blocks.push(chunk.to_vec());
        }
    }

    /// Internal consistency check, for tests: block ordering, per-block
    /// sortedness, length bookkeeping.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut count = 0;
        let mut prev = f64::NEG_INFINITY;
        for block in &self.blocks {
            assert!(!block.is_empty(), "empty block retained");
            assert!(block.len() < 2 * BLOCK_CAP, "oversized block");
            for &x in block {
                assert!(prev <= x, "out of order: {prev} then {x}");
                prev = x;
            }
            count += block.len();
        }
        assert_eq!(count, self.len, "len bookkeeping drifted");
    }
}

impl FromIterator<f64> for RankIndex {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut idx = Self::new();
        idx.rebuild(iter);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_select_ordered() {
        let mut idx = RankIndex::new();
        for w in [5.0, 1.0, 3.0, 3.0, 9.0, 0.0] {
            idx.insert(w);
        }
        idx.check_invariants();
        assert_eq!(idx.to_vec(), vec![0.0, 1.0, 3.0, 3.0, 5.0, 9.0]);
        assert_eq!(idx.select(0), Some(0.0));
        assert_eq!(idx.select(5), Some(9.0));
        assert_eq!(idx.select(6), None);
    }

    #[test]
    fn remove_handles_duplicates_and_misses() {
        let mut idx: RankIndex = [7.0, 7.0, 2.0].into_iter().collect();
        assert!(idx.remove_one(7.0));
        assert_eq!(idx.to_vec(), vec![2.0, 7.0]);
        assert!(!idx.remove_one(8.0));
        assert!(idx.remove_one(2.0));
        assert!(idx.remove_one(7.0));
        assert!(idx.is_empty());
        assert!(!idx.remove_one(7.0));
        idx.check_invariants();
    }

    #[test]
    fn blocks_split_and_stay_bounded() {
        let mut idx = RankIndex::new();
        // Ascending, descending, and interleaved insertions all stress the
        // split path.
        for i in 0..(6 * BLOCK_CAP) {
            idx.insert(i as f64);
        }
        for i in (0..(6 * BLOCK_CAP)).rev() {
            idx.insert(i as f64 + 0.5);
        }
        idx.check_invariants();
        assert_eq!(idx.len(), 12 * BLOCK_CAP);
        assert_eq!(idx.select(0), Some(0.0));
        assert_eq!(idx.select(1), Some(0.5));
    }

    #[test]
    fn rebuild_from_unsorted() {
        let mut idx = RankIndex::new();
        idx.rebuild((0..2000).rev().map(|i| i as f64));
        idx.check_invariants();
        assert_eq!(idx.len(), 2000);
        assert_eq!(idx.select(1999), Some(1999.0));
    }

    #[test]
    fn clear_resets() {
        let mut idx: RankIndex = (0..100).map(|i| i as f64).collect();
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.select(0), None);
        idx.insert(1.0);
        assert_eq!(idx.len(), 1);
    }
}
