//! The Brevik Method Batch Predictor (BMBP) — the paper's contribution.
//!
//! BMBP predicts an upper bound, at a stated confidence level, on the queue
//! wait a newly submitted job will experience, using *only* the history of
//! previously observed waits:
//!
//! 1. maintain the observed waits in sorted order;
//! 2. read the bound off an order statistic whose index comes from inverting
//!    the binomial CDF ([`crate::bound`]);
//! 3. watch for runs of consecutive incorrect predictions — a calibrated
//!    "rare event" ([`crate::changepoint`]) — and, when one occurs, trim the
//!    history to the minimum statistically meaningful length so the
//!    predictor adapts to the regime change.

use crate::bound::{self, BoundIndexCache, BoundMethod, BoundOutcome, BoundSpec};
use crate::changepoint::{calibrate_threshold, RareEventDetector, ThresholdTable};
use crate::history::HistoryBuffer;
use crate::state::{BmbpState, DetectorState};
use crate::{PredictError, QuantilePredictor};
use qdelay_telemetry::{Counter, Gauge, LatencyHistogram, Span};

/// Wall-clock cost of BMBP refits (index lookup + order-statistic read),
/// sampled one refit in 64.
static BMBP_REFIT_NS: LatencyHistogram = LatencyHistogram::new("predict.bmbp.refit_ns");
/// Change-point trims performed across all BMBP instances.
static BMBP_TRIMS: Counter = Counter::new("predict.bmbp.trims");
/// History length immediately after the most recent trim.
static BMBP_TRIMMED_LEN: Gauge = Gauge::new("predict.bmbp.trimmed_len");

/// Configuration for a [`Bmbp`] predictor.
///
/// # Examples
///
/// ```
/// use qdelay_predict::bmbp::BmbpConfig;
/// use qdelay_predict::bound::BoundSpec;
///
/// // Paper defaults: 95/95, auto method, trimming on.
/// let cfg = BmbpConfig::default();
/// assert_eq!(cfg.spec, BoundSpec::paper_default());
/// assert!(cfg.trimming);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BmbpConfig {
    /// Target quantile and confidence level.
    pub spec: BoundSpec,
    /// Exact binomial inversion, CLT approximation, or automatic switch.
    pub method: BoundMethod,
    /// Whether to trim history on detected change points (paper §4.1);
    /// disabling this gives the "no adaptation" ablation.
    pub trimming: bool,
    /// Overrides the Monte-Carlo-calibrated consecutive-miss threshold.
    pub threshold_override: Option<usize>,
    /// Hard cap on retained history (`None` = unbounded, the paper's
    /// setting).
    pub max_history: Option<usize>,
}

impl Default for BmbpConfig {
    fn default() -> Self {
        Self {
            spec: BoundSpec::paper_default(),
            method: BoundMethod::Auto,
            trimming: true,
            threshold_override: None,
            max_history: None,
        }
    }
}

/// The BMBP predictor.
///
/// # Examples
///
/// ```
/// use qdelay_predict::bmbp::Bmbp;
/// use qdelay_predict::QuantilePredictor;
///
/// let mut p = Bmbp::with_defaults();
/// for i in 0..100 {
///     p.observe(10.0 + (i % 17) as f64);
/// }
/// p.refit();
/// let bound = p.current_bound().value().expect("100 obs > 59 minimum");
/// assert!(bound <= 26.0 && bound >= 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct Bmbp {
    config: BmbpConfig,
    history: HistoryBuffer,
    detector: RareEventDetector,
    index_cache: BoundIndexCache,
    cached: BoundOutcome,
    trims: usize,
    calibrated: bool,
    /// Sampling tick for the refit-latency span (one refit in 64 is timed;
    /// a refit is ~40 ns, so timing each would triple its cost).
    refit_tick: u32,
}

impl Bmbp {
    /// Creates a predictor from a configuration.
    pub fn new(config: BmbpConfig) -> Self {
        let history = match config.max_history {
            Some(cap) => HistoryBuffer::with_max_len(cap),
            None => HistoryBuffer::new(),
        };
        // Until training calibration runs, use the i.i.d. bucket of the
        // default table (or the override).
        let threshold = config
            .threshold_override
            .unwrap_or_else(|| ThresholdTable::default_table().threshold_for(0.0));
        let needed = config.spec.min_history_upper();
        let index_cache = BoundIndexCache::new(config.spec, config.method);
        Self {
            config,
            history,
            detector: RareEventDetector::new(threshold),
            index_cache,
            cached: BoundOutcome::InsufficientHistory { needed },
            trims: 0,
            calibrated: false,
            refit_tick: 0,
        }
    }

    /// Creates a predictor with the paper's default configuration (95/95,
    /// trimming enabled).
    pub fn with_defaults() -> Self {
        Self::new(BmbpConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &BmbpConfig {
        &self.config
    }

    /// The stored history.
    pub fn history(&self) -> &HistoryBuffer {
        &self.history
    }

    /// Number of change-point trims performed so far.
    pub fn trims(&self) -> usize {
        self.trims
    }

    /// The consecutive-miss threshold currently in force.
    pub fn miss_threshold(&self) -> usize {
        self.detector.threshold()
    }

    /// Ad-hoc **upper** bound query against the current history for an
    /// arbitrary spec (used e.g. for the paper's Table 8 quantile panels).
    ///
    /// Reads the order statistic straight off the history's rank index —
    /// no sorted copy is materialized.
    pub fn upper_bound_for(&self, spec: BoundSpec) -> BoundOutcome {
        match bound::upper_index(self.history.len(), spec, self.config.method) {
            Some(k) => BoundOutcome::Bound(
                self.history
                    .order_statistic(k)
                    .expect("index in [1, n] by construction"),
            ),
            None => BoundOutcome::InsufficientHistory {
                needed: spec.min_history_upper(),
            },
        }
    }

    /// Ad-hoc **lower** bound query against the current history.
    pub fn lower_bound_for(&self, spec: BoundSpec) -> BoundOutcome {
        match bound::lower_index(self.history.len(), spec, self.config.method) {
            Some(k) => BoundOutcome::Bound(
                self.history
                    .order_statistic(k)
                    .expect("index in [1, n] by construction"),
            ),
            None => BoundOutcome::InsufficientHistory {
                needed: spec.min_history_lower(),
            },
        }
    }

    /// Two-sided confidence interval for the `quantile` at overall level
    /// `confidence` (paper §3 notes the method extends to "two-sided
    /// confidence intervals, at any desired level of confidence").
    ///
    /// The confidence budget is split evenly: each side is a one-sided
    /// bound at `(1 + confidence) / 2`, so the pair covers the quantile
    /// with probability at least `confidence` by a union bound.
    ///
    /// Returns `None` if the history is too short for either side.
    ///
    /// # Panics
    ///
    /// Panics if `quantile` or `confidence` are outside `(0, 1)`.
    pub fn interval_for(&self, quantile: f64, confidence: f64) -> Option<(f64, f64)> {
        assert!(
            quantile > 0.0 && quantile < 1.0 && confidence > 0.0 && confidence < 1.0,
            "quantile and confidence must be in (0,1)"
        );
        let side = (1.0 + confidence) / 2.0;
        let spec = BoundSpec::new(quantile, side).expect("side level in (0,1)");
        let lo = self.lower_bound_for(spec).value()?;
        let hi = self.upper_bound_for(spec).value()?;
        Some((lo, hi))
    }

    /// Exports the plain serializable core of this predictor (see
    /// [`crate::state`] for the warm-restart guarantees).
    pub fn state(&self) -> BmbpState {
        BmbpState {
            quantile: self.config.spec.quantile(),
            confidence: self.config.spec.confidence(),
            method: self.config.method,
            trimming: self.config.trimming,
            threshold_override: self.config.threshold_override,
            max_history: self.config.max_history,
            detector: DetectorState {
                threshold: self.detector.threshold(),
                consecutive_misses: self.detector.consecutive_misses(),
                times_fired: self.detector.times_fired(),
            },
            trims: self.trims,
            calibrated: self.calibrated,
            waits: self.history.to_arrival_vec(),
        }
    }

    /// Reconstructs a predictor from exported state. The history is
    /// re-indexed, the bound-index cache rebuilt, and the served bound
    /// refit, so the result continues bit-for-bit where the exporter
    /// stopped.
    ///
    /// # Errors
    ///
    /// Rejects states with invalid specs, detectors, waits, or more waits
    /// than `max_history` admits.
    pub fn from_state(state: &BmbpState) -> Result<Self, PredictError> {
        let spec = BoundSpec::new(state.quantile, state.confidence)?;
        state.detector.validate()?;
        if let Some(cap) = state.max_history {
            if state.waits.len() > cap {
                return Err(PredictError::invalid_config(format!(
                    "{} waits exceed max_history {cap}",
                    state.waits.len()
                )));
            }
        }
        if let Some(&w) = state
            .waits
            .iter()
            .find(|w| !(w.is_finite() && **w >= 0.0))
        {
            return Err(PredictError::invalid_config(format!(
                "waits must be finite and non-negative, got {w}"
            )));
        }
        let mut p = Self::new(BmbpConfig {
            spec,
            method: state.method,
            trimming: state.trimming,
            threshold_override: state.threshold_override,
            max_history: state.max_history,
        });
        for &w in &state.waits {
            p.history.push(w);
        }
        p.detector = RareEventDetector::restore(
            state.detector.threshold,
            state.detector.consecutive_misses,
            state.detector.times_fired,
        );
        p.trims = state.trims;
        p.calibrated = state.calibrated;
        p.recompute();
        Ok(p)
    }

    fn recompute(&mut self) {
        let _span = Span::enter_sampled(&BMBP_REFIT_NS, &mut self.refit_tick, 63);
        // Index from the per-n memo (O(1) carry-forward between refits),
        // value from the rank index (O(√n) selection) — the refit no longer
        // touches every stored observation.
        self.cached = match self.index_cache.upper_index(self.history.len()) {
            Some(k) => BoundOutcome::Bound(
                self.history
                    .order_statistic(k)
                    .expect("index in [1, n] by construction"),
            ),
            None => BoundOutcome::InsufficientHistory {
                needed: self.config.spec.min_history_upper(),
            },
        };
    }
}

impl QuantilePredictor for Bmbp {
    fn name(&self) -> &str {
        "bmbp"
    }

    fn spec(&self) -> BoundSpec {
        self.config.spec
    }

    fn observe(&mut self, wait: f64) {
        self.history.push(wait);
    }

    fn refit(&mut self) {
        self.recompute();
    }

    fn current_bound(&self) -> BoundOutcome {
        self.cached
    }

    fn record_outcome(&mut self, predicted: f64, actual: f64) {
        let miss = actual > predicted;
        if !miss {
            self.detector.record_hit();
            return;
        }
        if self.detector.record_miss() && self.config.trimming {
            // Change point: keep only the shortest history from which a
            // statistically meaningful bound can still be drawn (59 for the
            // paper's 95/95 spec).
            self.history
                .trim_to_recent(self.config.spec.min_history_upper());
            self.trims += 1;
            BMBP_TRIMS.incr();
            BMBP_TRIMMED_LEN.set(self.history.len() as u64);
            self.recompute();
        }
    }

    fn finish_training(&mut self) {
        if self.config.threshold_override.is_none() {
            let waits = self.history.to_arrival_vec();
            let threshold = calibrate_threshold(&waits, ThresholdTable::default_table());
            self.detector.set_threshold(threshold);
        }
        self.calibrated = true;
        self.recompute();
    }

    fn history_len(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn insufficient_until_minimum_history() {
        let mut p = Bmbp::with_defaults();
        for w in ramp(58) {
            p.observe(w);
        }
        p.refit();
        assert_eq!(
            p.current_bound(),
            BoundOutcome::InsufficientHistory { needed: 59 }
        );
        p.observe(58.0);
        p.refit();
        assert_eq!(p.current_bound(), BoundOutcome::Bound(58.0));
    }

    #[test]
    fn refit_controls_visibility() {
        // Observations must not change the served prediction until refit —
        // the paper's epoch semantics (section 5.1, case 3).
        let mut p = Bmbp::with_defaults();
        for w in ramp(100) {
            p.observe(w);
        }
        p.refit();
        let before = p.current_bound();
        for _ in 0..50 {
            p.observe(1_000_000.0);
        }
        assert_eq!(p.current_bound(), before, "stale until refit");
        p.refit();
        assert_ne!(p.current_bound(), before);
    }

    #[test]
    fn trims_after_consecutive_misses() {
        let mut p = Bmbp::new(BmbpConfig {
            threshold_override: Some(3),
            ..BmbpConfig::default()
        });
        for w in ramp(200) {
            p.observe(w);
        }
        p.refit();
        let bound = p.current_bound().value().unwrap();
        // Three consecutive misses trigger a trim to 59.
        p.record_outcome(bound, bound + 1.0);
        p.record_outcome(bound, bound + 1.0);
        assert_eq!(p.history_len(), 200);
        p.record_outcome(bound, bound + 1.0);
        assert_eq!(p.trims(), 1);
        assert_eq!(p.history_len(), 59);
        // After the trim the bound reflects only recent (larger) values.
        assert_eq!(p.current_bound(), BoundOutcome::Bound(199.0));
    }

    #[test]
    fn hits_break_runs() {
        let mut p = Bmbp::new(BmbpConfig {
            threshold_override: Some(3),
            ..BmbpConfig::default()
        });
        for w in ramp(100) {
            p.observe(w);
        }
        p.refit();
        let b = p.current_bound().value().unwrap();
        p.record_outcome(b, b + 1.0);
        p.record_outcome(b, b + 1.0);
        p.record_outcome(b, b - 1.0); // hit
        p.record_outcome(b, b + 1.0);
        p.record_outcome(b, b + 1.0);
        assert_eq!(p.trims(), 0, "run was broken by the hit");
    }

    #[test]
    fn trimming_disabled_never_trims() {
        let mut p = Bmbp::new(BmbpConfig {
            trimming: false,
            threshold_override: Some(2),
            ..BmbpConfig::default()
        });
        for w in ramp(100) {
            p.observe(w);
        }
        p.refit();
        let b = p.current_bound().value().unwrap();
        for _ in 0..10 {
            p.record_outcome(b, b + 1.0);
        }
        assert_eq!(p.trims(), 0);
        assert_eq!(p.history_len(), 100);
    }

    #[test]
    fn training_calibration_sets_threshold() {
        let mut p = Bmbp::with_defaults();
        // Strongly autocorrelated training data.
        for i in 0..500 {
            p.observe(100.0 * (1.0 + (i as f64 / 60.0).sin()));
        }
        p.finish_training();
        assert!(p.miss_threshold() > 3, "threshold = {}", p.miss_threshold());
    }

    #[test]
    fn lower_and_upper_ad_hoc_queries() {
        let mut p = Bmbp::with_defaults();
        for w in ramp(1000) {
            p.observe(w);
        }
        let spec25 = BoundSpec::new(0.25, 0.95).unwrap();
        let spec95 = BoundSpec::paper_default();
        let lo = p.lower_bound_for(spec25).value().unwrap();
        let hi = p.upper_bound_for(spec95).value().unwrap();
        assert!(lo < 250.0, "lower bound on .25 quantile sits below it");
        assert!(hi > 950.0, "upper bound on .95 quantile sits above it");
    }

    #[test]
    fn two_sided_interval_straddles_quantile() {
        let mut p = Bmbp::with_defaults();
        for w in ramp(2000) {
            p.observe(w);
        }
        let (lo, hi) = p.interval_for(0.5, 0.95).expect("plenty of history");
        // Sample median of 0..2000 is ~1000.
        assert!(lo < 1000.0 && 1000.0 < hi, "interval ({lo}, {hi})");
        // A wider confidence level gives a wider interval.
        let (lo99, hi99) = p.interval_for(0.5, 0.99).unwrap();
        assert!(lo99 <= lo && hi99 >= hi);
    }

    #[test]
    fn two_sided_interval_needs_history() {
        let mut p = Bmbp::with_defaults();
        for w in ramp(20) {
            p.observe(w);
        }
        assert_eq!(p.interval_for(0.95, 0.95), None);
    }

    #[test]
    #[should_panic(expected = "must be in (0,1)")]
    fn two_sided_interval_validates() {
        Bmbp::with_defaults().interval_for(1.0, 0.95);
    }

    #[test]
    fn max_history_caps_growth() {
        let mut p = Bmbp::new(BmbpConfig {
            max_history: Some(80),
            ..BmbpConfig::default()
        });
        for w in ramp(500) {
            p.observe(w);
        }
        assert_eq!(p.history_len(), 80);
    }

    #[test]
    fn coverage_on_iid_data() {
        // On stationary data the 95/95 bound must cover at least ~95% of
        // subsequent draws. Deterministic scramble as the data source.
        let data: Vec<f64> = (0..4000)
            .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % 10_000) as f64)
            .collect();
        let mut p = Bmbp::with_defaults();
        let mut hits = 0usize;
        let mut total = 0usize;
        for (i, &w) in data.iter().enumerate() {
            if i >= 400 {
                p.refit();
                if let Some(b) = p.current_bound().value() {
                    total += 1;
                    if w <= b {
                        hits += 1;
                    }
                }
            }
            p.observe(w);
        }
        let frac = hits as f64 / total as f64;
        assert!(frac >= 0.95, "coverage {frac} < 0.95");
        // And not absurdly conservative on uniform data.
        assert!(frac <= 0.995, "coverage {frac} suspiciously high");
    }
}
