//! Closed-loop load generator for qdelay-serve, plus the end-to-end
//! warm-restart and crash-recovery checks the persistence formats promise.
//!
//! Run via `cargo bench -p qdelay-bench --bench serve_load`. Five sections:
//!
//! 1. **Loadgen** — an in-process server (4 shards) driven by 8 client
//!    connections, each keeping a fixed window of pipelined `predict`
//!    requests in flight (closed-loop: the population of outstanding
//!    requests is constant, a reply releases the next request). Run twice,
//!    parameterized over the wire protocol: once against the JSON listener
//!    (thread-per-connection) and once against the binary listener (CRC
//!    frames + epoll event loop). Reports aggregate req/s, the server-side
//!    `serve.request_ns` latency distribution, and the per-stage
//!    decode/queue/handle/reply breakdown (`serve.stage.*`) for each, and
//!    writes it all to `BENCH_serve.json` at the repo root.
//!
//! 2. **Durability** — the same closed loop driving `observe` (the only
//!    request the write-ahead log touches) against three servers: no
//!    journal, `fsync=interval` (the default), and `fsync=always`. The
//!    interval policy rides group commit and is expected to stay within
//!    20% of the non-durable baseline; `fsync=always` shows the floor.
//!
//! 3. **Recovery** — feed a journaling server, image its directory while
//!    it is live (exactly the bytes `kill -9` would leave), then time a
//!    cold boot from the image and require bit-identical predictions.
//!
//! 4. **Warm restart** — feed half a workload, snapshot, keep feeding while
//!    recording every prediction; kill the server, boot a fresh one from
//!    the snapshot, replay the second half, and require every prediction
//!    to be *bit-identical* to the uninterrupted run.
//!
//! 5. **Capacity** — a 10k-partition registry served under
//!    `max_resident=256` per shard: closed-loop predict throughput with
//!    ~90% of touches landing on hibernated partitions (restore + refit +
//!    re-evict per hit), reported as a retention ratio against the same
//!    registry fully resident, plus the `serve.hibernate.restore_ns`
//!    latency distribution and the resident/hibernated/disk gauges (the
//!    memory the cap is buying back).
//!
//! 6. **Replication** — a warm standby tailing the primary's WAL: how fast
//!    a fresh replica catches up on a populated journal, how far it lags
//!    under full observe load (`repl.lag_records`), what the attached
//!    replica costs the primary's observe throughput vs the journal-only
//!    baseline, and whether the quiesced replica's snapshot is
//!    byte-identical to the primary's. The overhead number is an
//!    in-process measurement: the replica applies on the same box (and on
//!    the 1-CPU bench container, the same core) as the primary it
//!    shadows, so the ratio is a floor on what separate machines see.
//!
//! Flags: `-- --requests N` (per connection, default 40000),
//! `-- --window W` (in-flight per connection, default 32).

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use qdelay_json::Json;
use qdelay_serve::client::{BinClient, Client};
use qdelay_serve::durability::{FsyncPolicy, JournalConfig};
use qdelay_serve::server::{Server, ServerConfig};

const SHARDS: usize = 4;
const CONNECTIONS: usize = 8;

/// Warm partitions: 4 sites x 1 queue x 4 proc buckets = 16 partitions,
/// spread over all shards.
const SITES: [&str; 4] = ["datastar", "lonestar", "blue-horizon", "cnsidell"];
const PROCS: [u32; 4] = [2, 8, 32, 128];

fn wait_stream(i: u64) -> f64 {
    (i.wrapping_mul(2_654_435_761) % 100_000) as f64 / 10.0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let requests_per_conn = flag("--requests", 40_000);
    let window = flag("--window", 32).max(1);

    let (req_per_s, latency, stages) = section_loadgen(requests_per_conn, window);
    let (bin_req_per_s, bin_latency, bin_stages) =
        section_loadgen_binary(requests_per_conn, window);
    let durability = section_durability(requests_per_conn / 2, window);
    let capacity = section_capacity(requests_per_conn / 4, window);
    let replication = section_replication(requests_per_conn / 2, window);
    let recovery = section_recovery();
    let replayed = section_warm_restart();
    write_bench_json(
        requests_per_conn,
        window,
        req_per_s,
        &latency,
        &stages,
        bin_req_per_s,
        &bin_latency,
        &bin_stages,
        durability,
        capacity,
        replication,
        recovery,
        replayed,
    );
}

/// Pulls `count`/`p50`/`p99` for each traced stage of one protocol
/// (`"json"` or `"bin"`) out of a telemetry snapshot document, and prints
/// the breakdown.
fn stage_summary(snapshot: &Json, proto: &str) -> Json {
    let histograms = snapshot.get("histograms").cloned().unwrap_or(Json::Null);
    let mut fields = Vec::new();
    for stage in ["decode_ns", "queue_ns", "handle_ns", "reply_ns"] {
        let h = histograms
            .get(&format!("serve.stage.{proto}.{stage}"))
            .cloned()
            .unwrap_or(Json::Null);
        let pick = |k: &str| h.get(k).cloned().unwrap_or(Json::Null);
        if let (Some(p50), Some(p99)) = (
            h.get("p50").and_then(Json::as_f64),
            h.get("p99").and_then(Json::as_f64),
        ) {
            println!("    stage {stage:<10} p50 {p50:>8.0} ns   p99 {p99:>9.0} ns");
        }
        fields.push((
            stage.to_string(),
            Json::Obj(vec![
                ("count".into(), pick("count")),
                ("p50".into(), pick("p50")),
                ("p99".into(), pick("p99")),
            ]),
        ));
    }
    Json::Obj(fields)
}

/// Runs the closed-loop load phase; returns (aggregate predict req/s, the
/// server-side request latency summary, the per-stage breakdown).
fn section_loadgen(requests_per_conn: usize, window: usize) -> (f64, Json, Json) {
    println!("== qdelay-serve closed-loop loadgen ==");
    println!(
        "  {SHARDS} shards, {CONNECTIONS} connections, window {window}, \
         {requests_per_conn} predicts/connection"
    );

    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig { shards: SHARDS, ..ServerConfig::default() },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Warm every partition past the 95/95 history floor so predicts serve
    // real bounds, and refit once so the measured phase is read-mostly.
    let mut warm = Client::connect(addr).expect("connect");
    for site in SITES {
        for procs in PROCS {
            for i in 0..200u64 {
                warm.observe(site, "normal", procs, wait_stream(i), None, None)
                    .expect("warm observe");
            }
            let p = warm.predict(site, "normal", procs).expect("warm predict");
            assert!(p.bmbp.is_some(), "warmup must produce a bound");
        }
    }

    // Measure only the load phase.
    qdelay_telemetry::reset();
    let total_sent = AtomicU64::new(0);
    let barrier = Barrier::new(CONNECTIONS + 1);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..CONNECTIONS {
            let barrier = &barrier;
            let total_sent = &total_sent;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Pre-render the request lines this connection cycles over.
                let lines: Vec<String> = (0..16)
                    .map(|i| {
                        let site = SITES[(t + i) % SITES.len()];
                        let procs = PROCS[(t / SITES.len() + i) % PROCS.len()];
                        format!(
                            r#"{{"method":"predict","site":"{site}","queue":"normal","procs":{procs}}}"#
                        )
                    })
                    .collect();
                barrier.wait();
                let mut sent = 0usize;
                let mut received = 0usize;
                while received < requests_per_conn {
                    while sent < requests_per_conn && sent - received < window {
                        client.send_raw(&lines[sent % lines.len()]).expect("send");
                        sent += 1;
                    }
                    let reply = client.read_reply().expect("reply");
                    assert_eq!(
                        reply.get("ok"),
                        Some(&Json::Bool(true)),
                        "predict failed: {}",
                        reply.to_string_compact()
                    );
                    received += 1;
                }
                total_sent.fetch_add(sent as u64, Ordering::Relaxed);
            });
        }
        barrier.wait();
    });
    let elapsed = start.elapsed().as_secs_f64();
    let total = total_sent.load(Ordering::Relaxed);
    let req_per_s = total as f64 / elapsed;

    let snap = qdelay_telemetry::snapshot().to_json();
    let latency = snap
        .get("histograms")
        .and_then(|h| h.get("serve.request_ns"))
        .cloned()
        .unwrap_or(Json::Null);
    println!(
        "  {total} predicts in {elapsed:.3} s => {:.0} req/s  (target >= 100k)",
        req_per_s
    );
    if let (Some(p50), Some(p99)) = (
        latency.get("p50").and_then(Json::as_f64),
        latency.get("p99").and_then(Json::as_f64),
    ) {
        println!("  server-side enqueue-to-reply: p50 {p50:.0} ns, p99 {p99:.0} ns");
    }
    let stages = stage_summary(&snap, "json");

    let mut shutdown = Client::connect(addr).expect("connect");
    shutdown.shutdown().expect("shutdown");
    server.join().expect("join");
    (req_per_s, latency, stages)
}

/// The same closed loop against the binary listener: identical shard
/// work, identical request mix — only the wire format and the I/O model
/// (epoll event loop instead of thread-per-connection) differ. Returns
/// (aggregate predict req/s, server-side request latency summary, the
/// per-stage breakdown).
fn section_loadgen_binary(requests_per_conn: usize, window: usize) -> (f64, Json, Json) {
    println!("\n== binary protocol closed-loop loadgen ==");
    println!(
        "  {SHARDS} shards, {CONNECTIONS} connections, window {window}, \
         {requests_per_conn} predicts/connection"
    );

    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            shards: SHARDS,
            binary_addr: Some("127.0.0.1:0".to_string()),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.binary_addr().expect("binary listener");

    // Same warmup as the JSON run, through the binary listener.
    let mut warm = BinClient::connect(addr).expect("connect");
    for site in SITES {
        for procs in PROCS {
            for i in 0..200u64 {
                warm.observe(site, "normal", procs, wait_stream(i), None, None)
                    .expect("warm observe");
            }
            let p = warm.predict(site, "normal", procs).expect("warm predict");
            assert!(p.bmbp.is_some(), "warmup must produce a bound");
        }
    }

    qdelay_telemetry::reset();
    let total_sent = AtomicU64::new(0);
    let barrier = Barrier::new(CONNECTIONS + 1);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..CONNECTIONS {
            let barrier = &barrier;
            let total_sent = &total_sent;
            scope.spawn(move || {
                let mut client = BinClient::connect(addr).expect("connect");
                let targets: Vec<(&str, u32)> = (0..16)
                    .map(|i| {
                        (
                            SITES[(t + i) % SITES.len()],
                            PROCS[(t / SITES.len() + i) % PROCS.len()],
                        )
                    })
                    .collect();
                barrier.wait();
                let mut sent = 0usize;
                let mut received = 0usize;
                while received < requests_per_conn {
                    while sent < requests_per_conn && sent - received < window {
                        let (site, procs) = targets[sent % targets.len()];
                        client.queue_predict(site, "normal", procs);
                        sent += 1;
                    }
                    client.flush().expect("flush");
                    let (_, resp) = client.read_response().expect("reply");
                    assert!(
                        matches!(resp, qdelay_serve::proto::BinResponse::Predict { .. }),
                        "predict failed: {resp:?}"
                    );
                    received += 1;
                }
                total_sent.fetch_add(sent as u64, Ordering::Relaxed);
            });
        }
        barrier.wait();
    });
    let elapsed = start.elapsed().as_secs_f64();
    let total = total_sent.load(Ordering::Relaxed);
    let req_per_s = total as f64 / elapsed;

    let snap = qdelay_telemetry::snapshot().to_json();
    let latency = snap
        .get("histograms")
        .and_then(|h| h.get("serve.request_ns"))
        .cloned()
        .unwrap_or(Json::Null);
    println!("  {total} predicts in {elapsed:.3} s => {:.0} req/s", req_per_s);
    if let (Some(p50), Some(p99)) = (
        latency.get("p50").and_then(Json::as_f64),
        latency.get("p99").and_then(Json::as_f64),
    ) {
        println!("  server-side enqueue-to-reply: p50 {p50:.0} ns, p99 {p99:.0} ns");
    }
    let stages = stage_summary(&snap, "bin");

    let mut shutdown = BinClient::connect(addr).expect("connect");
    shutdown.shutdown().expect("shutdown");
    server.join().expect("join");
    (req_per_s, latency, stages)
}

/// Closed-loop `observe` load (the write path the journal sits on);
/// returns aggregate req/s.
fn observe_loadgen(
    label: &str,
    requests_per_conn: usize,
    window: usize,
    journal: Option<JournalConfig>,
) -> f64 {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig { shards: SHARDS, journal, ..ServerConfig::default() },
    )
    .expect("bind loopback");
    let req_per_s = drive_observes(server.local_addr(), requests_per_conn, window);
    println!(
        "  {label}: {} observes => {req_per_s:.0} req/s",
        requests_per_conn * CONNECTIONS
    );

    let mut shutdown = Client::connect(server.local_addr()).expect("connect");
    shutdown.shutdown().expect("shutdown");
    server.join().expect("join");
    req_per_s
}

/// The closed observe loop itself, against an already-running server;
/// returns aggregate req/s. Shared by the durability and replication
/// sections so their throughput numbers are directly comparable.
fn drive_observes(
    addr: std::net::SocketAddr,
    requests_per_conn: usize,
    window: usize,
) -> f64 {
    let total_sent = AtomicU64::new(0);
    let barrier = Barrier::new(CONNECTIONS + 1);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..CONNECTIONS {
            let barrier = &barrier;
            let total_sent = &total_sent;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let lines: Vec<String> = (0..16)
                    .map(|i| {
                        let site = SITES[(t + i) % SITES.len()];
                        let procs = PROCS[(t / SITES.len() + i) % PROCS.len()];
                        let wait = wait_stream((t * 16 + i) as u64);
                        format!(
                            r#"{{"method":"observe","site":"{site}","queue":"normal","procs":{procs},"wait":{wait}}}"#
                        )
                    })
                    .collect();
                barrier.wait();
                let mut sent = 0usize;
                let mut received = 0usize;
                while received < requests_per_conn {
                    while sent < requests_per_conn && sent - received < window {
                        client.send_raw(&lines[sent % lines.len()]).expect("send");
                        sent += 1;
                    }
                    let reply = client.read_reply().expect("reply");
                    assert_eq!(
                        reply.get("ok"),
                        Some(&Json::Bool(true)),
                        "observe failed: {}",
                        reply.to_string_compact()
                    );
                    received += 1;
                }
                total_sent.fetch_add(sent as u64, Ordering::Relaxed);
            });
        }
        barrier.wait();
    });
    let elapsed = start.elapsed().as_secs_f64();
    let total = total_sent.load(Ordering::Relaxed);
    total as f64 / elapsed
}

/// Measures the observe-path cost of durability: no journal vs the
/// `fsync=interval` default vs `fsync=always`.
fn section_durability(requests_per_conn: usize, window: usize) -> Json {
    println!("\n== durability: closed-loop observe throughput, journal off vs on ==");
    let baseline = observe_loadgen("baseline (no journal)  ", requests_per_conn, window, None);

    let dir = std::env::temp_dir().join("qdelay-serve-bench-journal");
    let _ = std::fs::remove_dir_all(&dir);
    let interval = observe_loadgen(
        "fsync=interval (100ms) ",
        requests_per_conn,
        window,
        Some(JournalConfig::new(&dir)),
    );

    let _ = std::fs::remove_dir_all(&dir);
    let mut always_cfg = JournalConfig::new(&dir);
    always_cfg.fsync = FsyncPolicy::Always;
    let always = observe_loadgen(
        "fsync=always           ",
        (requests_per_conn / 10).max(1_000),
        window,
        Some(always_cfg),
    );
    let _ = std::fs::remove_dir_all(&dir);

    let ratio = interval / baseline;
    println!(
        "  fsync=interval keeps {:.1}% of the non-durable baseline (target >= 80%)",
        ratio * 100.0
    );
    Json::Obj(vec![
        ("observe_req_per_s_no_journal".into(), Json::Num(baseline)),
        ("observe_req_per_s_fsync_interval".into(), Json::Num(interval)),
        ("observe_req_per_s_fsync_always".into(), Json::Num(always)),
        ("interval_over_baseline".into(), Json::Num(ratio)),
    ])
}

/// A 10k-partition registry under `max_resident=256` per shard: predict
/// throughput retention vs the fully-resident baseline, restore latency,
/// and how much of the registry the cap pushes to disk.
fn section_capacity(requests_per_conn: usize, window: usize) -> Json {
    println!("\n== capacity: 10k partitions under max_resident=256 per shard ==");
    const PARTITIONS: usize = 10_000;
    const CAP: usize = 256;
    const WARM_OBS: u64 = 4; // enough history for a spill record, cheap to refit

    // One run of the closed predict loop over the whole key space; each
    // connection cycles its own slice, so with the cap on, most touches
    // land on hibernated partitions.
    fn predict_loadgen(
        addr: std::net::SocketAddr,
        requests_per_conn: usize,
        window: usize,
    ) -> f64 {
        let total_sent = AtomicU64::new(0);
        let barrier = Barrier::new(CONNECTIONS + 1);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..CONNECTIONS {
                let barrier = &barrier;
                let total_sent = &total_sent;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let slice = PARTITIONS / CONNECTIONS;
                    let lines: Vec<String> = (t * slice..(t + 1) * slice)
                        .map(|p| {
                            format!(
                                r#"{{"method":"predict","site":"p-{p:04}","queue":"normal","procs":8}}"#
                            )
                        })
                        .collect();
                    barrier.wait();
                    let mut sent = 0usize;
                    let mut received = 0usize;
                    while received < requests_per_conn {
                        while sent < requests_per_conn && sent - received < window {
                            client.send_raw(&lines[sent % lines.len()]).expect("send");
                            sent += 1;
                        }
                        let reply = client.read_reply().expect("reply");
                        assert_eq!(
                            reply.get("ok"),
                            Some(&Json::Bool(true)),
                            "predict failed: {}",
                            reply.to_string_compact()
                        );
                        received += 1;
                    }
                    total_sent.fetch_add(sent as u64, Ordering::Relaxed);
                });
            }
            barrier.wait();
        });
        total_sent.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
    }

    // Populates every partition with a short history, pipelined.
    fn populate(addr: std::net::SocketAddr) {
        std::thread::scope(|scope| {
            for t in 0..CONNECTIONS {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let slice = PARTITIONS / CONNECTIONS;
                    let mut sent = 0usize;
                    let mut received = 0usize;
                    let total = slice * WARM_OBS as usize;
                    while received < total {
                        while sent < total && sent - received < 64 {
                            let p = t * slice + sent / WARM_OBS as usize;
                            let wait = wait_stream((p as u64) * WARM_OBS + sent as u64);
                            client
                                .send_raw(&format!(
                                    r#"{{"method":"observe","site":"p-{p:04}","queue":"normal","procs":8,"wait":{wait}}}"#
                                ))
                                .expect("send");
                            sent += 1;
                        }
                        let reply = client.read_reply().expect("reply");
                        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
                        received += 1;
                    }
                });
            }
        });
    }

    let run = |label: &str, cap: Option<usize>| -> (f64, Json, Json) {
        let dir = std::env::temp_dir().join("qdelay-serve-bench-capacity");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("capacity dir");
        let server = Server::start(
            "127.0.0.1:0",
            ServerConfig {
                shards: SHARDS,
                max_resident: cap,
                snapshot_path: Some(dir.join("snap.json")),
                ..ServerConfig::default()
            },
        )
        .expect("bind capacity server");
        populate(server.local_addr());
        qdelay_telemetry::reset();
        let req_per_s = predict_loadgen(server.local_addr(), requests_per_conn, window);
        let snap = qdelay_telemetry::snapshot().to_json();
        println!(
            "  {label}: {} predicts over {PARTITIONS} partitions => {req_per_s:.0} req/s",
            requests_per_conn * CONNECTIONS
        );
        // Resident/hibernated/spill *levels* come from `stats` (the
        // telemetry gauges were just reset, so they only carry deltas).
        let mut shutdown = Client::connect(server.local_addr()).expect("connect");
        let stats = shutdown.stats().expect("stats");
        shutdown.shutdown().expect("shutdown");
        server.join().expect("join");
        let _ = std::fs::remove_dir_all(&dir);
        (req_per_s, snap, stats)
    };

    let (baseline, _, _) = run("fully resident        ", None);
    let (capped, snap, stats) = run("max_resident=256/shard", Some(CAP));

    let level = |name: &str| stats.get(name).and_then(Json::as_f64).unwrap_or(0.0);
    let counter = |name: &str| {
        snap.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    let restore = snap
        .get("histograms")
        .and_then(|h| h.get("serve.hibernate.restore_ns"))
        .cloned()
        .unwrap_or(Json::Null);
    let pick = |k: &str| restore.get(k).cloned().unwrap_or(Json::Null);
    let ratio = if baseline > 0.0 { capped / baseline } else { 0.0 };
    let resident = level("resident");
    let hibernated = level("hibernated");
    let disk = level("spill_disk_bytes");
    println!(
        "  capped run keeps {:.1}% of the fully-resident predict rate",
        ratio * 100.0
    );
    println!(
        "  end state: {resident:.0} resident, {hibernated:.0} hibernated, \
         {:.1} MiB spilled ({:.0} restores, {:.0} evictions)",
        disk / (1024.0 * 1024.0),
        counter("serve.hibernate.restores"),
        counter("serve.hibernate.evictions"),
    );
    if let (Some(p50), Some(p99)) = (
        restore.get("p50").and_then(Json::as_f64),
        restore.get("p99").and_then(Json::as_f64),
    ) {
        println!("  restore latency: p50 {p50:.0} ns, p99 {p99:.0} ns");
    }

    Json::Obj(vec![
        ("partitions".into(), Json::Num(PARTITIONS as f64)),
        ("max_resident_per_shard".into(), Json::Num(CAP as f64)),
        ("predict_req_per_s_uncapped".into(), Json::Num(baseline)),
        ("predict_req_per_s_capped".into(), Json::Num(capped)),
        ("capped_over_uncapped".into(), Json::Num(ratio)),
        ("resident".into(), Json::Num(resident)),
        ("hibernated".into(), Json::Num(hibernated)),
        ("spill_disk_bytes".into(), Json::Num(disk)),
        ("restores".into(), Json::Num(counter("serve.hibernate.restores"))),
        ("evictions".into(), Json::Num(counter("serve.hibernate.evictions"))),
        (
            "restore_ns".into(),
            Json::Obj(vec![
                ("count".into(), pick("count")),
                ("p50".into(), pick("p50")),
                ("p99".into(), pick("p99")),
            ]),
        ),
    ])
}

/// Measures the replication plane: catch-up rate of a fresh replica over
/// a populated WAL, steady-state lag under full observe load, the cost of
/// an attached replica to primary observe throughput, and byte-identity
/// of the quiesced replica snapshot.
fn section_replication(requests_per_conn: usize, window: usize) -> Json {
    println!("\n== replication: catch-up, steady-state lag, primary overhead ==");

    // Journal-only baseline: same fsync=interval WAL, no replication.
    let base_dir = std::env::temp_dir().join("qdelay-serve-bench-repl-base");
    let _ = std::fs::remove_dir_all(&base_dir);
    let baseline = observe_loadgen(
        "journal only           ",
        requests_per_conn,
        window,
        Some(JournalConfig::new(&base_dir)),
    );
    let _ = std::fs::remove_dir_all(&base_dir);

    let dir = std::env::temp_dir().join("qdelay-serve-bench-repl");
    let _ = std::fs::remove_dir_all(&dir);
    let primary = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            shards: SHARDS,
            journal: Some(JournalConfig::new(&dir)),
            repl_addr: Some("127.0.0.1:0".to_string()),
            ..ServerConfig::default()
        },
    )
    .expect("bind primary");
    let repl_addr = primary.repl_addr().expect("repl listener").to_string();

    // Populate the WAL before any replica exists; the closed loop sends
    // exactly `requests_per_conn` per connection, so the record count is
    // known without asking the server.
    drive_observes(primary.local_addr(), requests_per_conn, window);
    let backlog = (requests_per_conn * CONNECTIONS) as u64;

    // Catch-up: a fresh replica must scan + apply the whole backlog.
    let boot = Instant::now();
    let replica = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            shards: SHARDS,
            replicate_from: Some(repl_addr),
            ..ServerConfig::default()
        },
    )
    .expect("bind replica");
    let mut rc = Client::connect(replica.local_addr()).expect("connect replica");
    loop {
        let applied = rc
            .stats()
            .expect("replica stats")
            .get("observations")
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64;
        if applied >= backlog {
            break;
        }
        assert!(
            boot.elapsed() < std::time::Duration::from_secs(120),
            "replica stuck at {applied}/{backlog} applied records"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let catchup_s = boot.elapsed().as_secs_f64();
    let catchup_rate = backlog as f64 / catchup_s;
    println!(
        "  catch-up: {backlog} records in {catchup_s:.3} s => {catchup_rate:.0} records/s"
    );

    // Steady state: full observe load on the primary while the replica
    // tails. A sampler thread watches the lag gauge during the run.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let mut with_replica = 0.0;
    let mut lag_max = 0.0f64;
    let mut lag_sum = 0.0f64;
    let mut lag_samples = 0u64;
    std::thread::scope(|scope| {
        let sampler = scope.spawn(|| {
            // Read the gauge atomic directly: a full telemetry snapshot
            // per sample would perturb the throughput being measured.
            let (mut max, mut sum, mut n) = (0.0f64, 0.0f64, 0u64);
            while !stop.load(Ordering::Relaxed) {
                let lag = qdelay_repl::LAG_RECORDS.value() as f64;
                max = max.max(lag);
                sum += lag;
                n += 1;
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            (max, sum, n)
        });
        with_replica = drive_observes(primary.local_addr(), requests_per_conn, window);
        stop.store(true, Ordering::Relaxed);
        (lag_max, lag_sum, lag_samples) = sampler.join().expect("lag sampler");
    });
    let lag_mean = if lag_samples > 0 { lag_sum / lag_samples as f64 } else { 0.0 };
    let ratio = with_replica / baseline;
    println!(
        "  with replica attached  : {} observes => {with_replica:.0} req/s \
         ({:.1}% of journal-only; replica applies in-process on this box)",
        requests_per_conn * CONNECTIONS,
        ratio * 100.0
    );
    println!(
        "  steady-state lag: mean {lag_mean:.0} records, max {lag_max:.0} records \
         ({lag_samples} samples)"
    );

    // Quiesced byte-identity: no more observes are in flight, so the
    // primary's snapshot is stable and the replica must converge to
    // exactly those bytes. Snapshots go to files — at this scale the
    // inline form would exceed the client's line cap.
    let snap_dir = std::env::temp_dir().join("qdelay-serve-bench-repl-snap");
    std::fs::create_dir_all(&snap_dir).expect("snapshot dir");
    let p_path = snap_dir.join("primary.json");
    let r_path = snap_dir.join("replica.json");
    let mut pc = Client::connect(primary.local_addr()).expect("connect primary");
    pc.snapshot_to(p_path.to_str().expect("utf8 path")).expect("primary snapshot");
    let want = std::fs::read(&p_path).expect("read primary snapshot");
    let deadline = Instant::now() + std::time::Duration::from_secs(60);
    loop {
        rc.snapshot_to(r_path.to_str().expect("utf8 path")).expect("replica snapshot");
        if std::fs::read(&r_path).expect("read replica snapshot") == want {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replica snapshot never converged to the primary's bytes"
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    let _ = std::fs::remove_dir_all(&snap_dir);
    println!("  quiesced replica snapshot: byte-identical to the primary");

    rc.shutdown().expect("replica shutdown");
    replica.join().expect("replica join");
    pc.shutdown().expect("primary shutdown");
    primary.join().expect("primary join");
    let _ = std::fs::remove_dir_all(&dir);

    Json::Obj(vec![
        ("catchup_records".into(), Json::Num(backlog as f64)),
        ("catchup_s".into(), Json::Num(catchup_s)),
        ("catchup_records_per_s".into(), Json::Num(catchup_rate)),
        ("steady_lag_records_mean".into(), Json::Num(lag_mean)),
        ("steady_lag_records_max".into(), Json::Num(lag_max)),
        ("observe_req_per_s_journal_only".into(), Json::Num(baseline)),
        ("observe_req_per_s_with_replica".into(), Json::Num(with_replica)),
        ("replica_over_journal_only".into(), Json::Num(ratio)),
        ("bit_identical".into(), Json::Bool(true)),
    ])
}

/// Times a cold boot from a live crash image of the journal directory and
/// checks the recovered predictions bit-for-bit.
fn section_recovery() -> Json {
    println!("\n== recovery: boot from a kill -9 image of the journal ==");
    const EVENTS: u64 = 20_000;
    let dir = std::env::temp_dir().join("qdelay-serve-bench-recovery");
    let image = std::env::temp_dir().join("qdelay-serve-bench-recovery-image");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&image);

    // `Never`: the crash is modelled by imaging the live directory, so the
    // page cache stands in for the disk and the numbers isolate replay cost.
    let journal = |at: &Path| {
        let mut cfg = JournalConfig::new(at);
        cfg.fsync = FsyncPolicy::Never;
        cfg
    };
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            shards: SHARDS,
            journal: Some(journal(&dir)),
            ..ServerConfig::default()
        },
    )
    .expect("bind journaling server");
    let mut c = Client::connect(server.local_addr()).expect("connect");
    for i in 0..EVENTS {
        let site = SITES[(i as usize) % SITES.len()];
        let procs = PROCS[(i as usize / SITES.len()) % PROCS.len()];
        c.observe(site, "normal", procs, wait_stream(i), None, None)
            .expect("observe");
    }
    let reference: Vec<Option<u64>> = SITES
        .iter()
        .flat_map(|site| {
            PROCS.map(|procs| {
                c.predict(site, "normal", procs)
                    .expect("predict")
                    .bmbp
                    .map(f64::to_bits)
            })
        })
        .collect();

    // The crash image: copy the directory while the server is still live.
    std::fs::create_dir_all(&image).expect("image dir");
    let mut journal_bytes = 0u64;
    let mut files = 0u64;
    for entry in std::fs::read_dir(&dir).expect("read journal dir") {
        let entry = entry.expect("dir entry");
        journal_bytes += std::fs::copy(entry.path(), image.join(entry.file_name()))
            .expect("copy journal file");
        files += 1;
    }
    c.shutdown().expect("shutdown");
    server.join().expect("join");

    let boot = Instant::now();
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            shards: SHARDS,
            journal: Some(journal(&image)),
            ..ServerConfig::default()
        },
    )
    .expect("bind recovered server");
    let recovery_ms = boot.elapsed().as_secs_f64() * 1e3;

    let mut c = Client::connect(server.local_addr()).expect("connect");
    let stats = c.stats().expect("stats");
    assert_eq!(
        stats.get("observations").and_then(Json::as_f64),
        Some(EVENTS as f64),
        "every acked observation must survive the crash"
    );
    let restored: Vec<Option<u64>> = SITES
        .iter()
        .flat_map(|site| {
            PROCS.map(|procs| {
                c.predict(site, "normal", procs)
                    .expect("predict")
                    .bmbp
                    .map(f64::to_bits)
            })
        })
        .collect();
    assert_eq!(
        reference, restored,
        "recovered server must serve bit-identical predictions"
    );
    c.shutdown().expect("shutdown");
    server.join().expect("join");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&image);

    println!(
        "  {EVENTS} acked observations, {journal_bytes} journal bytes in {files} files"
    );
    println!("  cold boot + replay + consolidation: {recovery_ms:.1} ms, predictions bit-identical");
    Json::Obj(vec![
        ("acked_observations".into(), Json::Num(EVENTS as f64)),
        ("journal_bytes".into(), Json::Num(journal_bytes as f64)),
        ("journal_files".into(), Json::Num(files as f64)),
        ("recovery_ms".into(), Json::Num(recovery_ms)),
        ("bit_identical".into(), Json::Bool(true)),
    ])
}

/// Feeds a 1200-event workload with a mid-stream snapshot + restart and
/// checks bit-identical predictions for the remainder; returns the number
/// of compared predictions.
fn section_warm_restart() -> usize {
    println!("\n== warm restart: kill mid-workload, restore, compare bit-for-bit ==");
    const SPLIT: u64 = 600;
    const TOTAL: u64 = 1200;
    let dir = std::env::temp_dir().join("qdelay-serve-bench");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("loadgen-snapshot.json");
    let _ = std::fs::remove_file(&path);

    // Feeds events [from, to) with outcome feedback, predicting after each
    // observe; returns the (bmbp, lognormal) bit patterns.
    fn feed(client: &mut Client, from: u64, to: u64) -> Vec<(Option<u64>, Option<u64>)> {
        let mut out = Vec::new();
        let mut last: Option<f64> = None;
        for i in from..to {
            client
                .observe("ds", "normal", 8, wait_stream(i), last, None)
                .expect("observe");
            let p = client.predict("ds", "normal", 8).expect("predict");
            last = p.bmbp;
            out.push((p.bmbp.map(f64::to_bits), p.lognormal.map(f64::to_bits)));
        }
        out
    }

    // Uninterrupted reference run.
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut c = Client::connect(server.local_addr()).expect("connect");
    feed(&mut c, 0, SPLIT);
    let partitions = c
        .snapshot_to(path.to_str().expect("utf8 path"))
        .expect("snapshot");
    assert_eq!(partitions, 1);
    let reference = feed(&mut c, SPLIT, TOTAL);
    c.shutdown().expect("shutdown");
    server.join().expect("join");

    // Restarted run: boot from the mid-stream snapshot, replay the rest.
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            shards: 2, // different shard count on purpose: the format is flat
            snapshot_path: Some(path.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind restored");
    let mut c = Client::connect(server.local_addr()).expect("connect");
    let restored = feed(&mut c, SPLIT, TOTAL);
    c.shutdown().expect("shutdown");
    server.join().expect("join");

    assert_eq!(
        reference, restored,
        "restored server must serve bit-identical predictions"
    );
    println!(
        "  {} post-restart predictions, all bit-identical to the uninterrupted run",
        reference.len()
    );
    let _ = std::fs::remove_file(&path);
    reference.len()
}

#[allow(clippy::too_many_arguments)]
fn write_bench_json(
    requests_per_conn: usize,
    window: usize,
    req_per_s: f64,
    latency: &Json,
    stages: &Json,
    bin_req_per_s: f64,
    bin_latency: &Json,
    bin_stages: &Json,
    durability: Json,
    capacity: Json,
    replication: Json,
    recovery: Json,
    replayed: usize,
) {
    let doc = Json::Obj(vec![
        (
            "loadgen".into(),
            Json::Obj(vec![
                ("shards".into(), Json::Num(SHARDS as f64)),
                ("connections".into(), Json::Num(CONNECTIONS as f64)),
                ("window".into(), Json::Num(window as f64)),
                (
                    "requests".into(),
                    Json::Num((requests_per_conn * CONNECTIONS) as f64),
                ),
                ("predict_req_per_s".into(), Json::Num(req_per_s)),
                ("request_ns".into(), latency.clone()),
                ("stages".into(), stages.clone()),
            ]),
        ),
        (
            "loadgen_binary".into(),
            Json::Obj(vec![
                ("shards".into(), Json::Num(SHARDS as f64)),
                ("connections".into(), Json::Num(CONNECTIONS as f64)),
                ("window".into(), Json::Num(window as f64)),
                (
                    "requests".into(),
                    Json::Num((requests_per_conn * CONNECTIONS) as f64),
                ),
                ("predict_req_per_s".into(), Json::Num(bin_req_per_s)),
                ("request_ns".into(), bin_latency.clone()),
                ("stages".into(), bin_stages.clone()),
                (
                    "binary_over_json".into(),
                    Json::Num(if req_per_s > 0.0 { bin_req_per_s / req_per_s } else { 0.0 }),
                ),
            ]),
        ),
        ("durability".into(), durability),
        ("capacity".into(), capacity),
        ("replication".into(), replication),
        ("recovery".into(), recovery),
        (
            "warm_restart".into(),
            Json::Obj(vec![
                ("compared_predictions".into(), Json::Num(replayed as f64)),
                ("bit_identical".into(), Json::Bool(true)),
            ]),
        ),
    ]);
    let mut text = doc.to_string_pretty();
    text.push('\n');
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    match std::fs::write(path, &text) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}
