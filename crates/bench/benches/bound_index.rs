//! Cost of the order-statistic index computation itself: exact binomial CDF
//! inversion versus the appendix's CLT approximation, across sample sizes —
//! and the [`BoundIndexCache`] that makes the per-refit cost O(1) when `n`
//! changes by small steps, which is the harness's actual access pattern.
//!
//! Run via `cargo bench -p qdelay-bench --bench bound_index`.

use qdelay_bench::microbench::bench;
use qdelay_predict::bound::{upper_index, BoundIndexCache, BoundMethod, BoundSpec};

fn main() {
    let spec = BoundSpec::paper_default();

    println!("== upper_index: exact inversion vs CLT approximation ==");
    for &n in &[59usize, 1_000, 50_000, 1_000_000] {
        bench(&format!("upper_index/exact/n={n}"), || {
            upper_index(n, spec, BoundMethod::Exact)
        });
        bench(&format!("upper_index/approx/n={n}"), || {
            upper_index(n, spec, BoundMethod::Approx)
        });
    }

    // The harness's access pattern: one query per refit while n grows by a
    // handful of observations between refits. The cache carries the last
    // index forward with one O(1) CDF check per intervening n; computing
    // fresh re-inverts the binomial CDF every time.
    println!("\n== sequential-n sweep (59..=10058), one query per n ==");
    let sweep = 10_000usize;
    for method in [BoundMethod::Exact, BoundMethod::Auto] {
        let tag = match method {
            BoundMethod::Exact => "exact",
            BoundMethod::Approx => "approx",
            BoundMethod::Auto => "auto",
        };
        let cached = bench(&format!("upper_index/cached_sweep/{tag}/{sweep}"), || {
            let mut cache = BoundIndexCache::new(spec, method);
            let mut acc = 0usize;
            for n in 59..59 + sweep {
                acc += cache.upper_index(n).expect("n >= 59");
            }
            acc
        });
        let fresh = bench(&format!("upper_index/fresh_sweep/{tag}/{sweep}"), || {
            let mut acc = 0usize;
            for n in 59..59 + sweep {
                acc += upper_index(n, spec, method).expect("n >= 59");
            }
            acc
        });
        println!(
            "  [{tag}] cache speedup over fresh inversion: {:.1}x ({:.0} ns vs {:.0} ns per query)",
            fresh.ns_per_iter / cached.ns_per_iter,
            fresh.ns_per_iter / sweep as f64,
            cached.ns_per_iter / sweep as f64,
        );
    }

    println!("\n== log-normal comparator's per-refit cost driver ==");
    bench("tolerance_k_factor/exact_n_59", || {
        qdelay_stats::tolerance::one_sided_k_factor(59, 0.95, 0.95)
    });
    bench("tolerance_k_factor/approx_n_100000", || {
        qdelay_stats::tolerance::one_sided_k_factor_approx(100_000, 0.95, 0.95)
    });
}
