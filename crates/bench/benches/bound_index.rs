//! Cost of the order-statistic index computation itself: exact binomial CDF
//! inversion versus the appendix's CLT approximation, across sample sizes.
//! This quantifies why the appendix bothers with the approximation at all.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdelay_predict::bound::{upper_index, BoundMethod, BoundSpec};
use std::hint::black_box;

fn bench_index(c: &mut Criterion) {
    let spec = BoundSpec::paper_default();
    let mut group = c.benchmark_group("upper_index");
    for &n in &[59usize, 1_000, 50_000, 1_000_000] {
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, &n| {
            b.iter(|| black_box(upper_index(n, spec, BoundMethod::Exact)))
        });
        group.bench_with_input(BenchmarkId::new("approx", n), &n, |b, &n| {
            b.iter(|| black_box(upper_index(n, spec, BoundMethod::Approx)))
        });
    }
    group.finish();
}

fn bench_tolerance_factor(c: &mut Criterion) {
    // The log-normal comparator's per-refit cost driver.
    let mut group = c.benchmark_group("tolerance_k_factor");
    group.bench_function("exact_n_59", |b| {
        b.iter(|| black_box(qdelay_stats::tolerance::one_sided_k_factor(59, 0.95, 0.95)))
    });
    group.bench_function("approx_n_100000", |b| {
        b.iter(|| {
            black_box(qdelay_stats::tolerance::one_sided_k_factor_approx(
                100_000, 0.95, 0.95,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_index, bench_tolerance_factor);
criterion_main!(benches);
