//! The paper's timing claim (§5): "the average time required to make a
//! prediction over the approximately 1.2 million predictions ... is 8
//! milliseconds" on a 1 GHz Pentium III. This bench measures the same
//! operation — refit (recompute the served bound from history) plus serving
//! the prediction — at several history sizes, for BMBP and both log-normal
//! variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdelay_predict::bmbp::Bmbp;
use qdelay_predict::lognormal::{LogNormalConfig, LogNormalPredictor};
use qdelay_predict::QuantilePredictor;
use std::hint::black_box;

/// Deterministic heavy-tail-ish wait sequence.
fn waits(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let u = ((i as u64).wrapping_mul(2_654_435_761) % 1_000_000) as f64 / 1e6;
            (8.0 * u).exp() - 1.0
        })
        .collect()
}

fn bench_refit_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("refit_and_predict");
    for &n in &[59usize, 1_000, 10_000, 100_000] {
        let data = waits(n);

        let mut bmbp = Bmbp::with_defaults();
        for &w in &data {
            bmbp.observe(w);
        }
        group.bench_with_input(BenchmarkId::new("bmbp", n), &n, |b, _| {
            b.iter(|| {
                bmbp.refit();
                black_box(bmbp.current_bound())
            })
        });

        let mut logn = LogNormalPredictor::new(LogNormalConfig::no_trim());
        for &w in &data {
            logn.observe(w);
        }
        group.bench_with_input(BenchmarkId::new("lognormal", n), &n, |b, _| {
            b.iter(|| {
                logn.refit();
                black_box(logn.current_bound())
            })
        });
    }
    group.finish();
}

fn bench_observe(c: &mut Criterion) {
    // Steady-state ingest cost: history insertion at scale.
    let mut group = c.benchmark_group("observe");
    for &n in &[10_000usize, 100_000] {
        let data = waits(n);
        group.bench_with_input(BenchmarkId::new("bmbp_sorted_insert", n), &n, |b, _| {
            let mut bmbp = Bmbp::with_defaults();
            for &w in &data {
                bmbp.observe(w);
            }
            let mut i = 0usize;
            b.iter(|| {
                bmbp.observe(data[i % n]);
                i += 1;
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_refit_predict, bench_observe);
criterion_main!(benches);
