//! The paper's timing claim (§5): "the average time required to make a
//! prediction over the approximately 1.2 million predictions ... is 8
//! milliseconds" on a 1 GHz Pentium III. This bench measures the same
//! operation — refit (recompute the served bound from history) plus serving
//! the prediction — at several history sizes, for BMBP and the log-normal
//! comparator, plus the steady-state ingest cost of a single observation.
//!
//! Run via `cargo bench -p qdelay-bench --bench prediction_latency`.

use qdelay_bench::microbench::bench;
use qdelay_predict::bmbp::Bmbp;
use qdelay_predict::lognormal::{LogNormalConfig, LogNormalPredictor};
use qdelay_predict::QuantilePredictor;

/// Deterministic heavy-tail-ish wait sequence.
fn waits(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let u = ((i as u64).wrapping_mul(2_654_435_761) % 1_000_000) as f64 / 1e6;
            (8.0 * u).exp() - 1.0
        })
        .collect()
}

fn main() {
    println!("== refit + serve one prediction (paper claim: 8 ms) ==");
    for &n in &[59usize, 1_000, 10_000, 100_000] {
        let data = waits(n);

        let mut bmbp = Bmbp::with_defaults();
        for &w in &data {
            bmbp.observe(w);
        }
        bench(&format!("refit_and_predict/bmbp/n={n}"), || {
            bmbp.refit();
            bmbp.current_bound()
        });

        let mut logn = LogNormalPredictor::new(LogNormalConfig::no_trim());
        for &w in &data {
            logn.observe(w);
        }
        bench(&format!("refit_and_predict/lognormal/n={n}"), || {
            logn.refit();
            logn.current_bound()
        });
    }

    // Steady-state ingest cost: history insertion at scale. The predictor
    // keeps growing during the measurement, so the reported figure is an
    // average over sizes slightly above `n`.
    println!("\n== observe: single-observation ingest ==");
    for &n in &[10_000usize, 100_000] {
        let data = waits(n);
        let mut bmbp = Bmbp::with_defaults();
        for &w in &data {
            bmbp.observe(w);
        }
        let mut i = 0usize;
        bench(&format!("observe/bmbp/n={n}"), || {
            bmbp.observe(data[i % n]);
            i += 1;
        });

        let mut logn = LogNormalPredictor::new(LogNormalConfig::no_trim());
        for &w in &data {
            logn.observe(w);
        }
        let mut j = 0usize;
        bench(&format!("observe/lognormal/n={n}"), || {
            logn.observe(data[j % n]);
            j += 1;
        });
    }
}
