//! End-to-end replay throughput: how fast the §5.1 evaluation harness
//! pushes a full queue trace through each method. The paper processed
//! ~1.2 M predictions at 8 ms each (~2.7 hours); this measures the
//! reproduction's equivalent — and demonstrates the incremental engine's
//! speedup over the seed-era engine (flat sorted `Vec` history with O(n)
//! inserts, O(n) full-rescan refits) on full-history (NoTrim) replays.
//!
//! Run via `cargo bench -p qdelay-bench --bench harness_throughput`.
//! The default mode measures the naive engine at 25k/50k jobs and
//! extrapolates its 1M-job cost from the observed growth exponent (the
//! real thing is quadratic and takes tens of minutes). Pass `-- --full`
//! to also measure naive at 200k jobs, or `-- --naive-1m` to actually
//! replay 1M jobs through the seed-era engine.

use qdelay_bench::microbench::{bench, bench_once, Timing};
use qdelay_bench::suite::MethodKind;
use qdelay_predict::bmbp::{Bmbp, BmbpConfig};
use qdelay_predict::bound::{self, BoundMethod, BoundOutcome, BoundSpec};
use qdelay_predict::lognormal::{LogNormalConfig, LogNormalPredictor};
use qdelay_predict::QuantilePredictor;
use qdelay_sim::harness::{self, HarnessConfig};
use qdelay_stats::tolerance::KFactorCache;
use qdelay_trace::catalog;
use qdelay_trace::synth::{self, SynthSettings};
use qdelay_trace::{JobRecord, Trace};

// ---------------------------------------------------------------------------
// Seed-era baseline predictors, kept here verbatim-in-spirit so the bench
// can always measure "before" against the current engine: a flat sorted
// `Vec` maintained with O(n) `Vec::insert` per observation, and refits
// that rescan the entire history.
// ---------------------------------------------------------------------------

/// Seed-era log-normal NoTrim: O(n) sorted insert, O(n) MLE rescan per
/// refit.
struct NaiveLogNormalNoTrim {
    sorted: Vec<f64>,
    spec: BoundSpec,
    kcache: KFactorCache,
    cached: BoundOutcome,
}

impl NaiveLogNormalNoTrim {
    fn new() -> Self {
        let spec = BoundSpec::paper_default();
        Self {
            sorted: Vec::new(),
            spec,
            kcache: KFactorCache::new(spec.quantile(), spec.confidence())
                .expect("paper spec is valid"),
            cached: BoundOutcome::InsufficientHistory { needed: 2 },
        }
    }
}

impl QuantilePredictor for NaiveLogNormalNoTrim {
    fn name(&self) -> &str {
        "naive-lognormal-notrim"
    }

    fn spec(&self) -> BoundSpec {
        self.spec
    }

    fn observe(&mut self, wait: f64) {
        let at = self.sorted.partition_point(|&x| x <= wait);
        self.sorted.insert(at, wait); // O(n) memmove — the seed's cost
    }

    fn refit(&mut self) {
        let n = self.sorted.len();
        if n < 2 {
            self.cached = BoundOutcome::InsufficientHistory { needed: 2 };
            return;
        }
        // Full O(n) rescan per refit — the seed's cost.
        let logs: Vec<f64> = self.sorted.iter().map(|w| (w + 1.0).ln()).collect();
        let m = qdelay_stats::describe::mean(&logs).expect("n >= 2");
        let s = qdelay_stats::describe::sample_std(&logs).expect("n >= 2");
        self.cached = if s == 0.0 {
            BoundOutcome::Bound(m.exp() - 1.0)
        } else {
            let k = self.kcache.k_factor(n).expect("n >= 2");
            BoundOutcome::Bound((m + k * s).exp() - 1.0)
        };
    }

    fn current_bound(&self) -> BoundOutcome {
        self.cached
    }

    fn record_outcome(&mut self, _predicted: f64, _actual: f64) {}

    fn history_len(&self) -> usize {
        self.sorted.len()
    }
}

/// Seed-era full-history BMBP: O(n) sorted insert, and a fresh binomial
/// CDF inversion (no index cache) on every refit.
struct NaiveBmbpFullHistory {
    sorted: Vec<f64>,
    spec: BoundSpec,
    cached: BoundOutcome,
}

impl NaiveBmbpFullHistory {
    fn new() -> Self {
        let spec = BoundSpec::paper_default();
        Self {
            sorted: Vec::new(),
            spec,
            cached: BoundOutcome::InsufficientHistory {
                needed: spec.min_history_upper(),
            },
        }
    }
}

impl QuantilePredictor for NaiveBmbpFullHistory {
    fn name(&self) -> &str {
        "naive-bmbp-fullhistory"
    }

    fn spec(&self) -> BoundSpec {
        self.spec
    }

    fn observe(&mut self, wait: f64) {
        let at = self.sorted.partition_point(|&x| x <= wait);
        self.sorted.insert(at, wait); // O(n) memmove — the seed's cost
    }

    fn refit(&mut self) {
        self.cached = match bound::upper_index(self.sorted.len(), self.spec, BoundMethod::Auto) {
            Some(k) => BoundOutcome::Bound(self.sorted[k - 1]),
            None => BoundOutcome::InsufficientHistory {
                needed: self.spec.min_history_upper(),
            },
        };
    }

    fn current_bound(&self) -> BoundOutcome {
        self.cached
    }

    fn record_outcome(&mut self, _predicted: f64, _actual: f64) {}

    fn history_len(&self) -> usize {
        self.sorted.len()
    }
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// Stationary scrambled-wait trace with fixed 60 s arrival gaps, so the
/// epoch count (one refit per 5 jobs at the paper's 300 s epoch) and event
/// mix are identical across engines and scales.
fn synthetic_trace(jobs: usize) -> Trace {
    let mut t = Trace::new("synthetic", "stationary");
    for i in 0..jobs as u64 {
        let wait = (i.wrapping_mul(2_654_435_761) % 7_200) as f64;
        t.push(JobRecord {
            submit: i * 60,
            wait_secs: wait,
            procs: 1,
            run_secs: 600.0,
        });
    }
    t
}

fn replay(trace: &Trace, label: &str, mut make: impl FnMut() -> Box<dyn QuantilePredictor>) -> Timing {
    bench_once(label, || {
        let mut p = make();
        harness::run(trace, p.as_mut(), &HarnessConfig::default())
    })
}

// ---------------------------------------------------------------------------
// Sections
// ---------------------------------------------------------------------------

fn section_catalog_replay() {
    println!("== harness replay, 10k-job catalog queue (datastar/express) ==");
    let mut profile = catalog::find("datastar", "express").expect("catalog row");
    profile.job_count = 10_000;
    let trace = synth::generate(&profile, &SynthSettings::with_seed(42));
    for method in MethodKind::ALL {
        bench(&format!("replay_10k/{}", method.label()), || {
            let mut p = method.make();
            harness::run(&trace, p.as_mut(), &HarnessConfig::default())
        });
    }

    println!("\n== trace synthesis and batch simulation ==");
    bench("synthesize_10k_jobs", || {
        synth::generate(&profile, &SynthSettings::with_seed(42))
    });
    bench("batchsim/easy_backfill_30d_300jpd", || {
        use qdelay_batchsim::engine::Simulation;
        use qdelay_batchsim::policy::SchedulerPolicy;
        use qdelay_batchsim::workload::WorkloadConfig;
        use qdelay_batchsim::MachineConfig;
        let mut sim = Simulation::new(
            MachineConfig::single_queue(128),
            SchedulerPolicy::EasyBackfill,
        );
        sim.run(&WorkloadConfig::default())
    });
}

fn section_incremental_vs_naive(full: bool, naive_1m: bool) {
    println!("\n== full-history (NoTrim) replay: incremental engine vs seed-era naive ==");

    let mut naive_scales = vec![25_000usize, 50_000];
    if full {
        naive_scales.push(200_000);
    }
    if naive_1m {
        naive_scales.push(1_000_000);
    }
    let top_naive = *naive_scales.last().expect("non-empty");
    let mut incr_scales = naive_scales.clone();
    if top_naive < 1_000_000 {
        incr_scales.push(1_000_000);
    }

    let mut naive_logn: Vec<(usize, Timing)> = Vec::new();
    let mut incr_logn: Vec<(usize, Timing)> = Vec::new();

    for &n in &incr_scales {
        let trace = synthetic_trace(n);
        let t = replay(&trace, &format!("incremental/lognormal_notrim/{n}_jobs"), || {
            Box::new(LogNormalPredictor::new(LogNormalConfig::no_trim()))
        });
        incr_logn.push((n, t));
        replay(&trace, &format!("incremental/bmbp_fullhistory/{n}_jobs"), || {
            Box::new(Bmbp::new(BmbpConfig {
                trimming: false,
                ..BmbpConfig::default()
            }))
        });
    }
    for &n in &naive_scales {
        let trace = synthetic_trace(n);
        let t = replay(&trace, &format!("naive/lognormal_notrim/{n}_jobs"), || {
            Box::new(NaiveLogNormalNoTrim::new())
        });
        naive_logn.push((n, t));
        replay(&trace, &format!("naive/bmbp_fullhistory/{n}_jobs"), || {
            Box::new(NaiveBmbpFullHistory::new())
        });
    }

    println!("\n-- NoTrim replay speedups (naive / incremental, same trace) --");
    for (n, naive) in &naive_logn {
        if let Some((_, incr)) = incr_logn.iter().find(|(m, _)| m == n) {
            println!(
                "  {n:>9} jobs: {:>8.1}x  (naive {:.2} s vs incremental {:.3} s)",
                naive.ns_per_iter / incr.ns_per_iter,
                naive.ns_per_iter / 1e9,
                incr.ns_per_iter / 1e9,
            );
        }
    }

    // Project the naive engine's 1M-job cost from its measured growth
    // exponent (it is quadratic: O(n) insert per job + O(n) rescan per
    // epoch), unless it was actually run.
    if top_naive < 1_000_000 && naive_logn.len() >= 2 {
        let (n1, t1) = &naive_logn[naive_logn.len() - 2];
        let (n2, t2) = &naive_logn[naive_logn.len() - 1];
        let p = (t2.ns_per_iter / t1.ns_per_iter).ln() / (*n2 as f64 / *n1 as f64).ln();
        let projected = t2.ns_per_iter * (1_000_000.0 / *n2 as f64).powf(p);
        let incr_1m = incr_logn
            .iter()
            .find(|(m, _)| *m == 1_000_000)
            .map(|(_, t)| t.ns_per_iter)
            .expect("1M incremental always measured");
        println!(
            "  projected naive 1M-job replay: {:.0} s (growth exponent {p:.2} from {n1}->{n2}) \
             => ~{:.0}x vs measured incremental {:.2} s",
            projected / 1e9,
            projected / incr_1m,
            incr_1m / 1e9,
        );
        println!("  (pass -- --naive-1m to measure the naive 1M replay directly)");
    }
}

fn section_overloaded_backfill() {
    use qdelay_batchsim::engine::Simulation;
    use qdelay_batchsim::policy::SchedulerPolicy;
    use qdelay_batchsim::ConservativeEngine;
    use qdelay_bench::suite::{overloaded_burst_jobs, overloaded_burst_machine};

    println!("\n== overloaded conservative backfill: incremental profile vs seed rebuild ==");
    // Head-to-head at scales the rebuild-per-event engine can still run.
    // Its per-pass cost is O(W * P^2) in the queue depth W, so the full run
    // grows ~quartically; the growth exponent projects its 10k-job cost.
    let mut naive: Vec<(usize, Timing)> = Vec::new();
    let mut incr: Vec<(usize, Timing)> = Vec::new();
    for n in [100usize, 200, 400] {
        let jobs = overloaded_burst_jobs(n, 7);
        let t = bench_once(&format!("naive_rebuild/overloaded_burst/{n}_jobs"), || {
            Simulation::new(overloaded_burst_machine(), SchedulerPolicy::ConservativeBackfill)
                .with_conservative_engine(ConservativeEngine::NaiveRebuild)
                .run_jobs(jobs.clone())
        });
        naive.push((n, t));
        let t = bench_once(&format!("incremental/overloaded_burst/{n}_jobs"), || {
            Simulation::new(overloaded_burst_machine(), SchedulerPolicy::ConservativeBackfill)
                .run_jobs(jobs.clone())
        });
        incr.push((n, t));
    }
    for ((n, tn), (_, ti)) in naive.iter().zip(&incr) {
        println!(
            "  {n:>6} jobs: {:>8.1}x  (naive {:.3} s vs incremental {:.4} s)",
            tn.ns_per_iter / ti.ns_per_iter,
            tn.ns_per_iter / 1e9,
            ti.ns_per_iter / 1e9,
        );
    }

    // The headline run the seed engine could not do at all without its cap:
    // 10k jobs, queue depth ~10k, reservations uncapped. Snapshot the
    // batchsim.* instruments from exactly this run into BENCH_batchsim.json.
    qdelay_telemetry::reset();
    let jobs = overloaded_burst_jobs(10_000, 7);
    let t10k = bench_once("incremental/overloaded_burst/10000_jobs", || {
        Simulation::new(overloaded_burst_machine(), SchedulerPolicy::ConservativeBackfill)
            .run_jobs(jobs.clone())
    });
    let snap = qdelay_telemetry::snapshot();
    let mut doc = snap.to_json();
    if let qdelay_json::Json::Obj(members) = &mut doc {
        members.push(("admission".to_string(), section_admission()));
    }
    let json = doc.to_string_pretty();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batchsim.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("  wrote batchsim telemetry snapshot to {path}"),
        Err(e) => println!("  could not write {path}: {e}"),
    }

    // Project the naive engine to 10k from its growth exponent.
    if naive.len() >= 2 {
        let (n1, t1) = &naive[naive.len() - 2];
        let (n2, t2) = &naive[naive.len() - 1];
        let p = (t2.ns_per_iter / t1.ns_per_iter).ln() / (*n2 as f64 / *n1 as f64).ln();
        let projected = t2.ns_per_iter * (10_000.0 / *n2 as f64).powf(p);
        println!(
            "  projected naive 10k-job burst: {:.0} s (growth exponent {p:.2} from {n1}->{n2}) \
             => ~{:.0}x vs measured incremental {:.3} s",
            projected / 1e9,
            projected / t10k.ns_per_iter,
            t10k.ns_per_iter / 1e9,
        );
    }
}

/// Deadline-aware scheduling closed loop: PredictiveBackfill vs EASY vs
/// conservative on SLO-miss rate over seeded overload waves — the same
/// wave shape the engine's own regression test pins. Returns the
/// `admission` member merged into `BENCH_batchsim.json`.
fn section_admission() -> qdelay_json::Json {
    use qdelay_batchsim::engine::Simulation;
    use qdelay_batchsim::metrics::slo_miss_rate;
    use qdelay_batchsim::policy::SchedulerPolicy;
    use qdelay_batchsim::{DeadlineConfig, MachineConfig, SimJob};
    use qdelay_json::Json;

    // Overload waves on an 8-proc machine: each wave is several times
    // machine capacity, with a drain gap between waves so the waits the
    // predictor observes in wave k inform wave k+1's ordering and
    // admission verdicts.
    let waves = |n_waves: u64, per_wave: u64, seed: u64| -> Vec<SimJob> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut jobs = Vec::new();
        for w in 0..n_waves {
            for j in 0..per_wave {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let procs = 1 + ((state >> 53) % 8) as u32;
                let runtime = 60 + ((state >> 17) % 1_201);
                jobs.push(SimJob {
                    id: w * per_wave + j,
                    submit: w * 20_000 + j * 10,
                    procs,
                    runtime,
                    estimate: runtime,
                    queue: 0,
                });
            }
        }
        jobs
    };

    println!("\n== deadline-aware scheduling: SLO-miss rate under overload waves ==");
    let deadline = DeadlineConfig::default();
    let mut out: Vec<(String, Json)> = vec![
        ("workload".to_string(), Json::Str("overload_waves_8proc".to_string())),
        ("deadline_base_secs".to_string(), Json::Num(deadline.base as f64)),
        ("deadline_estimate_factor".to_string(), Json::Num(deadline.factor as f64)),
    ];
    for (label, n_waves, per_wave, seed) in
        [("waves_6x40_seed7", 6u64, 40u64, 7u64), ("waves_6x40_seed11", 6, 40, 11)]
    {
        let jobs = waves(n_waves, per_wave, seed);
        let mut cell: Vec<(String, Json)> = Vec::new();
        for (policy, name) in [
            (SchedulerPolicy::PredictiveBackfill, "predictive"),
            (SchedulerPolicy::EasyBackfill, "easy"),
            (SchedulerPolicy::ConservativeBackfill, "conservative"),
        ] {
            let (_, starts, admits) = Simulation::new(MachineConfig::single_queue(8), policy)
                .with_deadlines(deadline)
                .run_jobs_admitted(jobs.clone());
            let miss = slo_miss_rate(&jobs, &starts, deadline).expect("jobs ran");
            let rejected = admits.iter().filter(|a| !a.admitted).count();
            println!(
                "  {label}/{name}: slo_miss {miss:.4}  ({rejected} of {} arrivals flagged)",
                jobs.len()
            );
            cell.push((
                name.to_string(),
                Json::Obj(vec![
                    ("slo_miss_rate".to_string(), Json::Num(miss)),
                    ("arrivals_flagged".to_string(), Json::Num(rejected as f64)),
                    ("jobs".to_string(), Json::Num(jobs.len() as f64)),
                ]),
            ));
        }
        let pred = cell[0].1.get("slo_miss_rate").and_then(|v| v.as_f64()).unwrap();
        let easy = cell[1].1.get("slo_miss_rate").and_then(|v| v.as_f64()).unwrap();
        assert!(
            pred < easy,
            "{label}: predictive ({pred}) must beat EASY ({easy}) on SLO misses"
        );
        out.push((label.to_string(), Json::Obj(cell)));
    }
    Json::Obj(out)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let naive_1m = args.iter().any(|a| a == "--naive-1m");

    section_catalog_replay();
    section_overloaded_backfill();
    section_incremental_vs_naive(full, naive_1m);
}
