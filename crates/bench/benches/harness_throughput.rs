//! End-to-end replay throughput: how fast the §5.1 evaluation harness
//! pushes a full queue trace through each method. The paper processed
//! ~1.2 M predictions at 8 ms each (~2.7 hours); this measures the
//! reproduction's equivalent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdelay_bench::suite::MethodKind;
use qdelay_sim::harness::{self, HarnessConfig};
use qdelay_trace::catalog;
use qdelay_trace::synth::{self, SynthSettings};
use std::hint::black_box;

fn bench_harness(c: &mut Criterion) {
    // A mid-size catalog queue, truncated for bench iteration times.
    let mut profile = catalog::find("datastar", "express").expect("catalog row");
    profile.job_count = 10_000;
    let trace = synth::generate(&profile, &SynthSettings::with_seed(42));

    let mut group = c.benchmark_group("harness_10k_jobs");
    group.sample_size(10);
    for method in MethodKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("replay", method.label()),
            &method,
            |b, &method| {
                b.iter(|| {
                    let mut p = method.make();
                    black_box(harness::run(
                        &trace,
                        p.as_mut(),
                        &HarnessConfig::default(),
                    ))
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    group.bench_function("generate_10k_jobs", |b| {
        b.iter(|| black_box(synth::generate(&profile, &SynthSettings::with_seed(42))))
    });
    group.finish();

    let mut group = c.benchmark_group("batchsim");
    group.sample_size(10);
    group.bench_function("easy_backfill_30d_300jpd", |b| {
        use qdelay_batchsim::engine::Simulation;
        use qdelay_batchsim::policy::SchedulerPolicy;
        use qdelay_batchsim::workload::WorkloadConfig;
        use qdelay_batchsim::MachineConfig;
        b.iter(|| {
            let mut sim = Simulation::new(
                MachineConfig::single_queue(128),
                SchedulerPolicy::EasyBackfill,
            );
            black_box(sim.run(&WorkloadConfig::default()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_harness);
criterion_main!(benches);
