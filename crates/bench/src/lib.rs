//! # qdelay-bench
//!
//! The experiment harness: everything needed to regenerate each table and
//! figure of the paper from the calibrated synthetic catalog.
//!
//! Binaries (one per exhibit — see DESIGN.md's per-experiment index):
//!
//! | binary      | reproduces                                         |
//! |-------------|----------------------------------------------------|
//! | `table1`    | Table 1 — trace summary statistics                 |
//! | `tables34`  | Tables 3 & 4 — per-queue correctness and accuracy  |
//! | `tables567` | Tables 5-7 — correctness by queue x processor range|
//! | `table8`    | Table 8 — day-in-the-life quantile panels          |
//! | `figure1`   | Figure 1 — bound time series, Datastar vs Lonestar |
//! | `figure2`   | Figure 2 — bounds by processor range, large-job era|
//! | `ablations` | epoch length, bound method, trimming ablations     |
//!
//! Micro-benchmarks (`cargo bench -p qdelay-bench`, built on the
//! first-party [`microbench`] runner) measure prediction latency against
//! the paper's "8 ms on a 1 GHz Pentium III" claim and document the
//! incremental engine's speedup over naive recomputation.

pub mod microbench;
pub mod suite;
pub mod table;

pub use suite::{evaluate_catalog, standard_methods, MethodKind, QueueRun, SuiteConfig};
