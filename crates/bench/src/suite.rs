//! Catalog-wide evaluation: every queue, every method, in parallel.

use qdelay_predict::bmbp::{Bmbp, BmbpConfig};
use qdelay_predict::lognormal::{LogNormalConfig, LogNormalPredictor};
use qdelay_predict::QuantilePredictor;
use qdelay_sim::harness::{self, HarnessConfig};
use qdelay_sim::metrics::{bucket_by_proc_range, EvalMetrics};
use qdelay_trace::catalog::QueueProfile;
use qdelay_trace::synth::{self, SynthSettings};
use qdelay_trace::{ProcRange, Trace};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The three methods the paper compares (Tables 3-7 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MethodKind {
    /// Brevik Method Batch Predictor (the paper's contribution).
    Bmbp,
    /// Log-normal MLE with full history.
    LogNormalNoTrim,
    /// Log-normal MLE with BMBP's history trimming.
    LogNormalTrim,
}

impl MethodKind {
    /// Column order used by the paper.
    pub const ALL: [MethodKind; 3] = [
        MethodKind::Bmbp,
        MethodKind::LogNormalNoTrim,
        MethodKind::LogNormalTrim,
    ];

    /// The paper's column label.
    pub fn label(&self) -> &'static str {
        match self {
            MethodKind::Bmbp => "BMBP",
            MethodKind::LogNormalNoTrim => "logn NoTrim",
            MethodKind::LogNormalTrim => "logn Trim",
        }
    }

    /// Instantiates a fresh predictor of this kind (95/95 spec).
    pub fn make(&self) -> Box<dyn QuantilePredictor> {
        match self {
            MethodKind::Bmbp => Box::new(Bmbp::new(BmbpConfig::default())),
            MethodKind::LogNormalNoTrim => {
                Box::new(LogNormalPredictor::new(LogNormalConfig::no_trim()))
            }
            MethodKind::LogNormalTrim => {
                Box::new(LogNormalPredictor::new(LogNormalConfig::trim()))
            }
        }
    }
}

/// The paper's method set.
pub fn standard_methods() -> Vec<MethodKind> {
    MethodKind::ALL.to_vec()
}

/// Configuration of a catalog evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteConfig {
    /// Trace synthesis settings (seed etc.).
    pub synth: SynthSettings,
    /// Replay-harness settings (epoch, training fraction).
    pub harness: HarnessConfig,
    /// Minimum jobs for a processor-range cell to be reported (paper: 1000).
    pub min_cell_jobs: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self {
            synth: SynthSettings::default(),
            harness: HarnessConfig::default(),
            min_cell_jobs: 1000,
        }
    }
}

/// The evaluation result for one (queue, method) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueRun {
    /// Machine key (paper naming, e.g. `"tacc2"`).
    pub machine: String,
    /// Queue name.
    pub queue: String,
    /// Which method produced this run.
    pub method: MethodKind,
    /// Whole-queue metrics (Tables 3/4).
    pub metrics: EvalMetrics,
    /// Per-processor-range metrics for cells meeting the job minimum
    /// (Tables 5-7).
    pub per_range: BTreeMap<ProcRange, EvalMetrics>,
}

/// Runs every method over every profile, in parallel across queues.
///
/// Each queue's trace is generated once and replayed once per method, so
/// methods see byte-identical workloads (the paper's "apples-to-apples"
/// requirement). Results are ordered by catalog order, then method order.
pub fn evaluate_catalog(profiles: &[QueueProfile], config: &SuiteConfig) -> Vec<QueueRun> {
    let methods = standard_methods();
    let mut results: Vec<Option<Vec<QueueRun>>> = vec![None; profiles.len()];
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(profiles.len().max(1));

    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<parking_lot::Mutex<Option<Vec<QueueRun>>>> =
        (0..profiles.len()).map(|_| parking_lot::Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= profiles.len() {
                    break;
                }
                let runs = evaluate_profile(&profiles[idx], config, &methods);
                *slots[idx].lock() = Some(runs);
            });
        }
    })
    .expect("evaluation worker panicked");

    for (i, slot) in slots.into_iter().enumerate() {
        results[i] = slot.into_inner();
    }
    results
        .into_iter()
        .flat_map(|r| r.expect("every profile evaluated"))
        .collect()
}

/// Evaluates all methods on one profile.
pub fn evaluate_profile(
    profile: &QueueProfile,
    config: &SuiteConfig,
    methods: &[MethodKind],
) -> Vec<QueueRun> {
    let trace = synth::generate(profile, &config.synth);
    methods
        .iter()
        .map(|&method| evaluate_trace(&trace, method, config))
        .collect()
}

/// Evaluates one method on an explicit trace.
pub fn evaluate_trace(trace: &Trace, method: MethodKind, config: &SuiteConfig) -> QueueRun {
    let mut predictor = method.make();
    let result = harness::run(trace, predictor.as_mut(), &config.harness);
    QueueRun {
        machine: trace.machine().to_string(),
        queue: trace.queue().to_string(),
        method,
        metrics: result.metrics(),
        per_range: bucket_by_proc_range(&result.records, config.min_cell_jobs),
    }
}

/// Groups runs as `(machine, queue) -> method -> run` for table rendering.
pub fn group_by_queue(
    runs: &[QueueRun],
) -> Vec<((String, String), BTreeMap<MethodKind, QueueRun>)> {
    let mut order: Vec<(String, String)> = Vec::new();
    let mut map: BTreeMap<(String, String), BTreeMap<MethodKind, QueueRun>> = BTreeMap::new();
    for run in runs {
        let key = (run.machine.clone(), run.queue.clone());
        if !map.contains_key(&key) {
            order.push(key.clone());
        }
        map.entry(key).or_default().insert(run.method, run.clone());
    }
    order
        .into_iter()
        .map(|key| {
            let v = map.remove(&key).expect("key inserted above");
            (key, v)
        })
        .collect()
}

/// Among the methods that are *correct* on this queue (fraction >= q),
/// returns the one with the tightest bounds — the highest median
/// actual/predicted ratio. This is the boldface rule of Tables 3/4.
pub fn most_accurate_correct(
    methods: &BTreeMap<MethodKind, QueueRun>,
    target_quantile: f64,
) -> Option<MethodKind> {
    methods
        .iter()
        .filter(|(_, run)| run.metrics.is_correct(target_quantile))
        .max_by(|a, b| {
            a.1.metrics
                .median_ratio
                .partial_cmp(&b.1.metrics.median_ratio)
                .expect("finite ratios")
        })
        .map(|(k, _)| *k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdelay_trace::catalog;

    /// A fast, small suite config for tests.
    fn quick_config() -> SuiteConfig {
        SuiteConfig {
            synth: SynthSettings::with_seed(7),
            ..SuiteConfig::default()
        }
    }

    /// A profile scaled down for test speed.
    fn small_profile() -> QueueProfile {
        let mut p = catalog::find("datastar", "express").unwrap();
        p.job_count = 3000;
        p
    }

    #[test]
    fn evaluate_profile_runs_all_methods() {
        let runs = evaluate_profile(&small_profile(), &quick_config(), &standard_methods());
        assert_eq!(runs.len(), 3);
        for r in &runs {
            assert!(r.metrics.jobs > 2000, "{:?} evaluated {} jobs", r.method, r.metrics.jobs);
        }
        // BMBP must be correct on a calibrated stationary-ish queue.
        let bmbp = runs.iter().find(|r| r.method == MethodKind::Bmbp).unwrap();
        assert!(
            bmbp.metrics.correct_fraction >= 0.95,
            "bmbp fraction {}",
            bmbp.metrics.correct_fraction
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut p1 = small_profile();
        p1.job_count = 1500;
        let mut p2 = catalog::find("sdsc", "express").unwrap();
        p2.job_count = 1500;
        let profiles = vec![p1.clone(), p2.clone()];
        let cfg = quick_config();
        let parallel = evaluate_catalog(&profiles, &cfg);
        let sequential: Vec<QueueRun> = profiles
            .iter()
            .flat_map(|p| evaluate_profile(p, &cfg, &standard_methods()))
            .collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn grouping_preserves_catalog_order() {
        let mut p1 = small_profile();
        p1.job_count = 1200;
        let mut p2 = catalog::find("sdsc", "express").unwrap();
        p2.job_count = 1200;
        let runs = evaluate_catalog(&[p1, p2], &quick_config());
        let grouped = group_by_queue(&runs);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0 .1, "express");
        assert_eq!(grouped[0].0 .0, "datastar");
        assert_eq!(grouped[1].0 .0, "sdsc");
        assert_eq!(grouped[0].1.len(), 3);
    }

    #[test]
    fn boldface_rule_prefers_tightest_correct() {
        use qdelay_sim::metrics::EvalMetrics;
        let mk = |fraction: f64, ratio: f64, method: MethodKind| QueueRun {
            machine: "m".into(),
            queue: "q".into(),
            method,
            metrics: EvalMetrics {
                jobs: 1000,
                correct: (fraction * 1000.0) as usize,
                correct_fraction: fraction,
                median_ratio: ratio,
                median_inverse_ratio: 1.0 / ratio,
                unpredicted: 0,
            },
            per_range: BTreeMap::new(),
        };
        let mut methods = BTreeMap::new();
        methods.insert(MethodKind::Bmbp, mk(0.97, 0.01, MethodKind::Bmbp));
        // Tighter but incorrect: must not win.
        methods.insert(
            MethodKind::LogNormalNoTrim,
            mk(0.90, 0.5, MethodKind::LogNormalNoTrim),
        );
        methods.insert(
            MethodKind::LogNormalTrim,
            mk(0.96, 0.005, MethodKind::LogNormalTrim),
        );
        assert_eq!(most_accurate_correct(&methods, 0.95), Some(MethodKind::Bmbp));
    }
}
