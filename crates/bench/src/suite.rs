//! Catalog-wide evaluation: every queue, every method, in parallel.

use qdelay_predict::bmbp::{Bmbp, BmbpConfig};
use qdelay_predict::lognormal::{LogNormalConfig, LogNormalPredictor};
use qdelay_predict::QuantilePredictor;
use qdelay_sim::harness::{self, HarnessConfig};
use qdelay_sim::metrics::{bucket_by_proc_range, EvalMetrics};
use qdelay_trace::catalog::QueueProfile;
use qdelay_trace::synth::{self, SynthSettings};
use qdelay_json::Json;
use qdelay_trace::{ProcRange, Trace};
use std::collections::BTreeMap;

/// The three methods the paper compares (Tables 3-7 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MethodKind {
    /// Brevik Method Batch Predictor (the paper's contribution).
    Bmbp,
    /// Log-normal MLE with full history.
    LogNormalNoTrim,
    /// Log-normal MLE with BMBP's history trimming.
    LogNormalTrim,
}

impl MethodKind {
    /// Column order used by the paper.
    pub const ALL: [MethodKind; 3] = [
        MethodKind::Bmbp,
        MethodKind::LogNormalNoTrim,
        MethodKind::LogNormalTrim,
    ];

    /// The paper's column label.
    pub fn label(&self) -> &'static str {
        match self {
            MethodKind::Bmbp => "BMBP",
            MethodKind::LogNormalNoTrim => "logn NoTrim",
            MethodKind::LogNormalTrim => "logn Trim",
        }
    }

    /// Stable identifier used in the JSON result artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::Bmbp => "Bmbp",
            MethodKind::LogNormalNoTrim => "LogNormalNoTrim",
            MethodKind::LogNormalTrim => "LogNormalTrim",
        }
    }

    /// Inverse of [`MethodKind::name`].
    pub fn from_name(name: &str) -> Option<MethodKind> {
        MethodKind::ALL.into_iter().find(|m| m.name() == name)
    }

    /// Instantiates a fresh predictor of this kind (95/95 spec).
    pub fn make(&self) -> Box<dyn QuantilePredictor> {
        match self {
            MethodKind::Bmbp => Box::new(Bmbp::new(BmbpConfig::default())),
            MethodKind::LogNormalNoTrim => {
                Box::new(LogNormalPredictor::new(LogNormalConfig::no_trim()))
            }
            MethodKind::LogNormalTrim => {
                Box::new(LogNormalPredictor::new(LogNormalConfig::trim()))
            }
        }
    }
}

/// The paper's method set.
pub fn standard_methods() -> Vec<MethodKind> {
    MethodKind::ALL.to_vec()
}

/// Configuration of a catalog evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteConfig {
    /// Trace synthesis settings (seed etc.).
    pub synth: SynthSettings,
    /// Replay-harness settings (epoch, training fraction).
    pub harness: HarnessConfig,
    /// Minimum jobs for a processor-range cell to be reported (paper: 1000).
    pub min_cell_jobs: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self {
            synth: SynthSettings::default(),
            harness: HarnessConfig::default(),
            min_cell_jobs: 1000,
        }
    }
}

/// The evaluation result for one (queue, method) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueRun {
    /// Machine key (paper naming, e.g. `"tacc2"`).
    pub machine: String,
    /// Queue name.
    pub queue: String,
    /// Which method produced this run.
    pub method: MethodKind,
    /// Whole-queue metrics (Tables 3/4).
    pub metrics: EvalMetrics,
    /// Per-processor-range metrics for cells meeting the job minimum
    /// (Tables 5-7).
    pub per_range: BTreeMap<ProcRange, EvalMetrics>,
}

/// Deterministic overloaded-burst workload for the conservative-backfill
/// benches and stress tests: `n` jobs burst in at 2-second spacing onto a
/// small machine, so the waiting queue grows to nearly `n` deep — far past
/// the seed engine's 128-job reservation cap. Runtimes are spread over a
/// wide range (60..20130 s) so estimated finishes rarely collide, which
/// keeps the incremental engine's fast path hot; estimates are exact, so
/// completions are on time. The same generator serves the bench's naive
/// baseline (at small `n`) and the incremental 10k-job headline run.
pub fn overloaded_burst_jobs(n: usize, seed: u64) -> Vec<qdelay_batchsim::SimJob> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n as u64)
        .map(|i| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let runtime = 60 + (state >> 17) % 20_071;
            qdelay_batchsim::SimJob {
                id: i,
                submit: i * 2,
                procs: 1 + (state >> 53) as u32 % 8,
                runtime,
                estimate: runtime,
                queue: 0,
            }
        })
        .collect()
}

/// The machine the overloaded-burst workload targets: 8 processors, one
/// queue — small enough that the burst overloads it immediately.
pub fn overloaded_burst_machine() -> qdelay_batchsim::MachineConfig {
    qdelay_batchsim::MachineConfig::single_queue(8)
}

/// Runs every method over every profile, in parallel across queues.
///
/// Each queue's trace is generated once and replayed once per method, so
/// methods see byte-identical workloads (the paper's "apples-to-apples"
/// requirement). Results are ordered by catalog order, then method order.
pub fn evaluate_catalog(profiles: &[QueueProfile], config: &SuiteConfig) -> Vec<QueueRun> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    evaluate_catalog_with_workers(profiles, config, workers)
}

/// [`evaluate_catalog`] with an explicit worker count.
///
/// Results depend only on the profiles and config, never on `workers` or
/// scheduling order: each profile is seeded independently and written to its
/// own slot, so `workers = 1` and `workers = N` produce identical output.
pub fn evaluate_catalog_with_workers(
    profiles: &[QueueProfile],
    config: &SuiteConfig,
    workers: usize,
) -> Vec<QueueRun> {
    let methods = standard_methods();
    let workers = workers.clamp(1, profiles.len().max(1));

    /// Wall-clock per profile evaluation (all methods on one queue).
    static PROFILE_EVAL_NS: qdelay_telemetry::LatencyHistogram =
        qdelay_telemetry::LatencyHistogram::new("bench.suite.profile_eval_ns");
    /// Profiles evaluated across all suite invocations.
    static PROFILES_EVALUATED: qdelay_telemetry::Counter =
        qdelay_telemetry::Counter::new("bench.suite.profiles_evaluated");

    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<Vec<QueueRun>>>> =
        (0..profiles.len()).map(|_| std::sync::Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Per-worker shard: timings accumulate contention-free and
                // flush into the shared histogram once, after the loop.
                let mut timings = qdelay_telemetry::LocalHistogram::new();
                loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if idx >= profiles.len() {
                        break;
                    }
                    let started = std::time::Instant::now();
                    let runs = evaluate_profile(&profiles[idx], config, &methods);
                    timings.record(started.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                    PROFILES_EVALUATED.incr();
                    *slots[idx].lock().expect("slot lock") = Some(runs);
                }
                PROFILE_EVAL_NS.merge_from(&timings);
            });
        }
    });

    slots
        .into_iter()
        .flat_map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every profile evaluated")
        })
        .collect()
}

/// Evaluates all methods on one profile.
pub fn evaluate_profile(
    profile: &QueueProfile,
    config: &SuiteConfig,
    methods: &[MethodKind],
) -> Vec<QueueRun> {
    let trace = synth::generate(profile, &config.synth);
    methods
        .iter()
        .map(|&method| evaluate_trace(&trace, method, config))
        .collect()
}

/// Evaluates one method on an explicit trace.
pub fn evaluate_trace(trace: &Trace, method: MethodKind, config: &SuiteConfig) -> QueueRun {
    let mut predictor = method.make();
    let result = harness::run(trace, predictor.as_mut(), &config.harness);
    QueueRun {
        machine: trace.machine().to_string(),
        queue: trace.queue().to_string(),
        method,
        metrics: result.metrics(),
        per_range: bucket_by_proc_range(&result.records, config.min_cell_jobs),
    }
}

/// Groups runs as `(machine, queue) -> method -> run` for table rendering.
pub fn group_by_queue(
    runs: &[QueueRun],
) -> Vec<((String, String), BTreeMap<MethodKind, QueueRun>)> {
    let mut order: Vec<(String, String)> = Vec::new();
    let mut map: BTreeMap<(String, String), BTreeMap<MethodKind, QueueRun>> = BTreeMap::new();
    for run in runs {
        let key = (run.machine.clone(), run.queue.clone());
        if !map.contains_key(&key) {
            order.push(key.clone());
        }
        map.entry(key).or_default().insert(run.method, run.clone());
    }
    order
        .into_iter()
        .map(|key| {
            let v = map.remove(&key).expect("key inserted above");
            (key, v)
        })
        .collect()
}

/// Among the methods that are *correct* on this queue (fraction >= q),
/// returns the one with the tightest bounds — the highest median
/// actual/predicted ratio. This is the boldface rule of Tables 3/4.
pub fn most_accurate_correct(
    methods: &BTreeMap<MethodKind, QueueRun>,
    target_quantile: f64,
) -> Option<MethodKind> {
    methods
        .iter()
        .filter(|(_, run)| run.metrics.is_correct(target_quantile))
        .max_by(|a, b| {
            a.1.metrics
                .median_ratio
                .partial_cmp(&b.1.metrics.median_ratio)
                .expect("finite ratios")
        })
        .map(|(k, _)| *k)
}

/// Stable JSON key for a processor range (matches the result artifacts).
fn range_key(range: ProcRange) -> &'static str {
    match range {
        ProcRange::R1To4 => "R1To4",
        ProcRange::R5To16 => "R5To16",
        ProcRange::R17To64 => "R17To64",
        ProcRange::R65Plus => "R65Plus",
    }
}

fn range_from_key(key: &str) -> Option<ProcRange> {
    ProcRange::ALL.into_iter().find(|&r| range_key(r) == key)
}

/// Non-finite medians (empty cells) serialize as `null`, as JSON requires.
fn num_or_null(x: f64) -> Json {
    if x.is_finite() {
        Json::from(x)
    } else {
        Json::Null
    }
}

fn metrics_to_json(m: &EvalMetrics) -> Json {
    Json::Obj(vec![
        ("jobs".into(), Json::from(m.jobs)),
        ("correct".into(), Json::from(m.correct)),
        ("correct_fraction".into(), Json::from(m.correct_fraction)),
        ("median_ratio".into(), num_or_null(m.median_ratio)),
        (
            "median_inverse_ratio".into(),
            num_or_null(m.median_inverse_ratio),
        ),
        ("unpredicted".into(), Json::from(m.unpredicted)),
    ])
}

fn field<'a>(j: &'a Json, key: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn f64_or_nan(j: &Json) -> Result<f64, String> {
    match j {
        Json::Null => Ok(f64::NAN),
        _ => j.as_f64().ok_or_else(|| "expected number".to_string()),
    }
}

fn metrics_from_json(j: &Json) -> Result<EvalMetrics, String> {
    Ok(EvalMetrics {
        jobs: field(j, "jobs")?.as_usize().ok_or("jobs not usize")?,
        correct: field(j, "correct")?.as_usize().ok_or("correct not usize")?,
        correct_fraction: field(j, "correct_fraction")?
            .as_f64()
            .ok_or("correct_fraction not f64")?,
        median_ratio: f64_or_nan(field(j, "median_ratio")?)?,
        median_inverse_ratio: f64_or_nan(field(j, "median_inverse_ratio")?)?,
        unpredicted: field(j, "unpredicted")?
            .as_usize()
            .ok_or("unpredicted not usize")?,
    })
}

/// Serializes runs to the JSON array shape stored in
/// `results_tables34.json` / `results_tables567.json`.
pub fn runs_to_json(runs: &[QueueRun]) -> Json {
    Json::Arr(
        runs.iter()
            .map(|run| {
                Json::Obj(vec![
                    ("machine".into(), Json::from(run.machine.as_str())),
                    ("queue".into(), Json::from(run.queue.as_str())),
                    ("method".into(), Json::from(run.method.name())),
                    ("metrics".into(), metrics_to_json(&run.metrics)),
                    (
                        "per_range".into(),
                        Json::Obj(
                            run.per_range
                                .iter()
                                .map(|(r, m)| (range_key(*r).to_string(), metrics_to_json(m)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// Parses the JSON array shape produced by [`runs_to_json`].
pub fn runs_from_json(j: &Json) -> Result<Vec<QueueRun>, String> {
    let arr = j.as_array().ok_or("expected top-level array")?;
    arr.iter()
        .map(|item| {
            let method_name = field(item, "method")?.as_str().ok_or("method not string")?;
            let method = MethodKind::from_name(method_name)
                .ok_or_else(|| format!("unknown method `{method_name}`"))?;
            let mut per_range = BTreeMap::new();
            for (key, val) in field(item, "per_range")?
                .as_object()
                .ok_or("per_range not object")?
            {
                let range =
                    range_from_key(key).ok_or_else(|| format!("unknown proc range `{key}`"))?;
                per_range.insert(range, metrics_from_json(val)?);
            }
            Ok(QueueRun {
                machine: field(item, "machine")?
                    .as_str()
                    .ok_or("machine not string")?
                    .to_string(),
                queue: field(item, "queue")?
                    .as_str()
                    .ok_or("queue not string")?
                    .to_string(),
                method,
                metrics: metrics_from_json(field(item, "metrics")?)?,
                per_range,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdelay_trace::catalog;

    /// A fast, small suite config for tests.
    fn quick_config() -> SuiteConfig {
        SuiteConfig {
            synth: SynthSettings::with_seed(7),
            ..SuiteConfig::default()
        }
    }

    /// A profile scaled down for test speed.
    fn small_profile() -> QueueProfile {
        let mut p = catalog::find("datastar", "express").unwrap();
        p.job_count = 3000;
        p
    }

    #[test]
    fn evaluate_profile_runs_all_methods() {
        let runs = evaluate_profile(&small_profile(), &quick_config(), &standard_methods());
        assert_eq!(runs.len(), 3);
        for r in &runs {
            assert!(r.metrics.jobs > 2000, "{:?} evaluated {} jobs", r.method, r.metrics.jobs);
        }
        // BMBP must be correct on a calibrated stationary-ish queue.
        let bmbp = runs.iter().find(|r| r.method == MethodKind::Bmbp).unwrap();
        assert!(
            bmbp.metrics.correct_fraction >= 0.95,
            "bmbp fraction {}",
            bmbp.metrics.correct_fraction
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut p1 = small_profile();
        p1.job_count = 1500;
        let mut p2 = catalog::find("sdsc", "express").unwrap();
        p2.job_count = 1500;
        let profiles = vec![p1.clone(), p2.clone()];
        let cfg = quick_config();
        let parallel = evaluate_catalog(&profiles, &cfg);
        let sequential: Vec<QueueRun> = profiles
            .iter()
            .flat_map(|p| evaluate_profile(p, &cfg, &standard_methods()))
            .collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn grouping_preserves_catalog_order() {
        let mut p1 = small_profile();
        p1.job_count = 1200;
        let mut p2 = catalog::find("sdsc", "express").unwrap();
        p2.job_count = 1200;
        let runs = evaluate_catalog(&[p1, p2], &quick_config());
        let grouped = group_by_queue(&runs);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0 .1, "express");
        assert_eq!(grouped[0].0 .0, "datastar");
        assert_eq!(grouped[1].0 .0, "sdsc");
        assert_eq!(grouped[0].1.len(), 3);
    }

    #[test]
    fn json_round_trip_preserves_runs() {
        let runs = evaluate_profile(&small_profile(), &quick_config(), &standard_methods());
        let json = runs_to_json(&runs);
        let text = json.to_string_pretty();
        let parsed = Json::parse(&text).expect("self-produced JSON parses");
        let back = runs_from_json(&parsed).expect("round trip");
        assert_eq!(back, runs);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let mut p1 = small_profile();
        p1.job_count = 1200;
        let mut p2 = catalog::find("sdsc", "express").unwrap();
        p2.job_count = 1200;
        let profiles = vec![p1, p2];
        let cfg = quick_config();
        let one = evaluate_catalog_with_workers(&profiles, &cfg, 1);
        let four = evaluate_catalog_with_workers(&profiles, &cfg, 4);
        assert_eq!(one, four);
    }

    #[test]
    fn boldface_rule_prefers_tightest_correct() {
        use qdelay_sim::metrics::EvalMetrics;
        let mk = |fraction: f64, ratio: f64, method: MethodKind| QueueRun {
            machine: "m".into(),
            queue: "q".into(),
            method,
            metrics: EvalMetrics {
                jobs: 1000,
                correct: (fraction * 1000.0) as usize,
                correct_fraction: fraction,
                median_ratio: ratio,
                median_inverse_ratio: 1.0 / ratio,
                unpredicted: 0,
            },
            per_range: BTreeMap::new(),
        };
        let mut methods = BTreeMap::new();
        methods.insert(MethodKind::Bmbp, mk(0.97, 0.01, MethodKind::Bmbp));
        // Tighter but incorrect: must not win.
        methods.insert(
            MethodKind::LogNormalNoTrim,
            mk(0.90, 0.5, MethodKind::LogNormalNoTrim),
        );
        methods.insert(
            MethodKind::LogNormalTrim,
            mk(0.96, 0.005, MethodKind::LogNormalTrim),
        );
        assert_eq!(most_accurate_correct(&methods, 0.95), Some(MethodKind::Bmbp));
    }
}
