//! Plain-text table rendering for the experiment binaries.
//!
//! The paper marks failing cells with an asterisk and the tightest correct
//! method in boldface; terminals have no bold in plain text, so we mark the
//! winner with a trailing `^`.

/// Renders a fixed-width table: a header row and data rows.
///
/// Column widths are sized to the longest cell. Columns are left-aligned
/// for the first `left_cols` columns and right-aligned after.
pub fn render(header: &[String], rows: &[Vec<String>], left_cols: usize) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i < left_cols {
                out.push_str(&format!("{:<width$}", cell, width = widths[i]));
            } else {
                out.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
        }
        out.push('\n');
    };
    fmt_row(header, &mut out);
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(row, &mut out);
    }
    out
}

/// Formats a correctness fraction the way the paper prints it: two decimal
/// places, `*` appended when below the target, `^` appended when this cell
/// is the boldface (tightest correct) winner.
pub fn fraction_cell(fraction: f64, target: f64, winner: bool) -> String {
    let mut s = format!("{fraction:.2}");
    if fraction < target {
        s.push('*');
    }
    if winner {
        s.push('^');
    }
    s
}

/// Formats a median ratio in the paper's scientific notation (`4.55e-02`).
pub fn ratio_cell(ratio: f64, correct: bool, winner: bool) -> String {
    let mut s = format!("{ratio:.2e}");
    if !correct {
        s.push('*');
    }
    if winner {
        s.push('^');
    }
    s
}

/// Formats seconds in compact human units for the narrative outputs.
pub fn human_secs(secs: f64) -> String {
    if secs < 120.0 {
        format!("{secs:.0} s")
    } else if secs < 7200.0 {
        format!("{:.1} min", secs / 60.0)
    } else if secs < 172_800.0 {
        format!("{:.1} h", secs / 3600.0)
    } else {
        format!("{:.1} days", secs / 86_400.0)
    }
}

/// A crude log-scale ASCII plot for two series (the figure binaries).
///
/// Each sample becomes one output row: timestamp, value columns, and a bar
/// chart of the first series on a log axis.
pub fn ascii_log_plot(
    labels: (&str, &str),
    series: &[(u64, Option<f64>, Option<f64>)],
    width: usize,
) -> String {
    let max = series
        .iter()
        .flat_map(|(_, a, b)| [a, b])
        .filter_map(|v| *v)
        .fold(1.0f64, f64::max);
    let log_max = (max + 1.0).ln();
    let bar = |v: Option<f64>, ch: char| -> String {
        match v {
            Some(v) => {
                let frac = ((v + 1.0).ln() / log_max).clamp(0.0, 1.0);
                let n = (frac * width as f64).round() as usize;
                ch.to_string().repeat(n.max(1))
            }
            None => "-".to_string(),
        }
    };
    let mut out = format!(
        "log-scale bounds: '#' = {}, '+' = {}\n",
        labels.0, labels.1
    );
    for (t, a, b) in series {
        out.push_str(&format!(
            "{t:>12}  {:>12}  {:>12}  |{}\n",
            a.map_or("-".into(), |v| format!("{v:.0}")),
            b.map_or("-".into(), |v| format!("{v:.0}")),
            bar(*a, '#'),
        ));
        out.push_str(&format!("{:>12}  {:>12}  {:>12}  |{}\n", "", "", "", bar(*b, '+')));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let header = vec!["Machine".to_string(), "Queue".to_string(), "Frac".to_string()];
        let rows = vec![
            vec!["datastar".into(), "normal".into(), "0.95".into()],
            vec!["lanl".into(), "short".into(), "0.91*".into()],
        ];
        let out = render(&header, &rows, 2);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Machine"));
        assert!(lines[2].contains("datastar"));
        // Right-aligned numeric column.
        assert!(lines[2].trim_end().ends_with("0.95"));
        assert!(lines[3].trim_end().ends_with("0.91*"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn render_rejects_ragged_rows() {
        render(
            &["a".to_string(), "b".to_string()],
            &[vec!["only-one".to_string()]],
            1,
        );
    }

    #[test]
    fn cells_carry_markers() {
        assert_eq!(fraction_cell(0.97, 0.95, false), "0.97");
        assert_eq!(fraction_cell(0.91, 0.95, false), "0.91*");
        assert_eq!(fraction_cell(0.97, 0.95, true), "0.97^");
        assert_eq!(ratio_cell(0.0455, true, false), "4.55e-2");
        assert_eq!(ratio_cell(0.0455, false, false), "4.55e-2*");
    }

    #[test]
    fn human_seconds() {
        assert_eq!(human_secs(12.0), "12 s");
        assert_eq!(human_secs(600.0), "10.0 min");
        assert_eq!(human_secs(7200.0), "2.0 h");
        assert_eq!(human_secs(345_600.0), "4.0 days");
    }

    #[test]
    fn ascii_plot_handles_missing_values() {
        let series = vec![(0u64, Some(10.0), None), (3600, Some(100.0), Some(5.0))];
        let out = ascii_log_plot(("a", "b"), &series, 40);
        assert!(out.contains('#'));
        assert!(out.contains('+'));
        assert!(out.contains('-'));
    }
}
