//! Minimal micro-benchmark runner backing `cargo bench -p qdelay-bench`.
//!
//! First-party so the workspace builds fully offline. The methodology is
//! deliberately simple: warm up, then run timed batches until a wall-clock
//! budget is spent, and report the *fastest* batch (least interference) —
//! adequate for the order-of-magnitude claims these benches document.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Result of timing one operation.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Human-readable benchmark label.
    pub label: String,
    /// Iterations per timed batch.
    pub batch: u64,
    /// Nanoseconds per iteration, from the fastest batch.
    pub ns_per_iter: f64,
}

impl Timing {
    /// Iterations per second implied by the fastest batch.
    pub fn per_sec(&self) -> f64 {
        1e9 / self.ns_per_iter
    }
}

impl std::fmt::Display for Timing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = self.ns_per_iter;
        let human = if t < 1e3 {
            format!("{t:.1} ns")
        } else if t < 1e6 {
            format!("{:.2} µs", t / 1e3)
        } else if t < 1e9 {
            format!("{:.2} ms", t / 1e6)
        } else {
            format!("{:.2} s", t / 1e9)
        };
        write!(f, "{:<44} {:>12}/iter", self.label, human)
    }
}

/// Times `op`, spending roughly `budget` of wall clock after warm-up.
///
/// `op` runs repeatedly; its return value is passed through
/// [`std::hint::black_box`] so the work is not optimized away.
pub fn time_with_budget<R>(label: &str, budget: Duration, mut op: impl FnMut() -> R) -> Timing {
    // Warm-up and batch sizing: grow the batch until it costs >= ~10 ms.
    let mut batch: u64 = 1;
    let batch_cost = loop {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(op());
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(10) || batch >= 1 << 24 {
            break elapsed;
        }
        batch *= 4;
    };

    let batches = (budget.as_secs_f64() / batch_cost.as_secs_f64().max(1e-9))
        .ceil()
        .clamp(1.0, 64.0) as u32;
    let mut best = batch_cost;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(op());
        }
        best = best.min(start.elapsed());
    }
    Timing {
        label: label.to_string(),
        batch,
        ns_per_iter: best.as_nanos() as f64 / batch as f64,
    }
}

/// [`time_with_budget`] with the default 300 ms budget; prints the result.
pub fn bench<R>(label: &str, op: impl FnMut() -> R) -> Timing {
    let t = time_with_budget(label, Duration::from_millis(300), op);
    println!("{t}");
    t
}

/// Times a single execution of `op` (for operations too slow to batch);
/// prints and returns the timing.
pub fn bench_once<R>(label: &str, op: impl FnOnce() -> R) -> Timing {
    let start = Instant::now();
    black_box(op());
    let t = Timing {
        label: label.to_string(),
        batch: 1,
        ns_per_iter: start.elapsed().as_nanos() as f64,
    };
    println!("{t}");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_is_positive_and_displays() {
        let t = time_with_budget("noop-ish", Duration::from_millis(20), || 1u64 + 1);
        assert!(t.ns_per_iter > 0.0);
        assert!(t.per_sec() > 0.0);
        let s = t.to_string();
        assert!(s.contains("noop-ish"), "{s}");
    }

    #[test]
    fn bench_once_measures_sleep() {
        let t = bench_once("sleep", || std::thread::sleep(Duration::from_millis(5)));
        assert!(t.ns_per_iter >= 5e6, "{}", t.ns_per_iter);
    }
}
