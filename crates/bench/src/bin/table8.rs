//! Regenerates the paper's **Table 8**: "one day in the life of the
//! datastar/normal queue" — every two hours, a 95%-confidence *lower* bound
//! on the 0.25 quantile and *upper* bounds on the 0.5, 0.75 and 0.95
//! quantiles of queue delay.
//!
//! Usage: `cargo run --release -p qdelay-bench --bin table8 [seed]`

use qdelay_bench::table;
use qdelay_sim::snapshots::{quantile_panels, SnapshotConfig};
use qdelay_trace::catalog;
use qdelay_trace::synth::{self, SynthSettings};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let profile = catalog::find("datastar", "normal").expect("catalog row exists");
    let trace = synth::generate(&profile, &SynthSettings::with_seed(seed));

    // The paper samples May 5th 2004; pick the same relative offset
    // (about one month into the 4/04-4/05 trace), one day, every 2 hours.
    let day_start = profile.start_unix + 34 * 86_400;
    let cfg = SnapshotConfig {
        start: day_start,
        end: day_start + 86_400,
        step: 7_200,
        confidence: 0.95,
    };
    let panels = quantile_panels(&trace, &cfg);

    println!("Table 8 — one day in the life of datastar/normal (seed {seed})");
    println!("95%-confidence bounds; lower bound for .25, upper for the rest\n");
    let header: Vec<String> = ["hour", ".25 Quantile", ".5 Quantile", ".75 Quantile", ".95 Quantile"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let cell = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.0}"));
    let rows: Vec<Vec<String>> = panels
        .iter()
        .map(|p| {
            vec![
                format!("{:02}:00", ((p.time - day_start) / 3600) % 48),
                cell(p.lower_q25),
                cell(p.upper_q50),
                cell(p.upper_q75),
                cell(p.upper_q95),
            ]
        })
        .collect();
    print!("{}", table::render(&header, &rows, 1));

    // Narrative check mirroring the paper's reading of the table.
    if let (Some(first), Some(last)) = (panels.first(), panels.last()) {
        if let (Some(a), Some(b)) = (first.upper_q50, last.upper_q50) {
            println!(
                "\nmedian-wait upper bound moved from {} to {} over the day",
                table::human_secs(a),
                table::human_secs(b)
            );
        }
    }
    println!("(units: seconds; every row satisfies lower .25 <= .5 <= .75 <= .95)");
}
