//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Refit epoch**: 300 s versus 0 s (refit on every arrival). §5.1
//!    claims "the effect on the results was minimal".
//! 2. **Bound method**: exact binomial inversion versus the appendix's CLT
//!    approximation.
//! 3. **Trimming**: BMBP with change-point trimming on versus off.
//! 4. **Miss-threshold sensitivity**: forcing the consecutive-miss
//!    threshold to 2/3/5/8 instead of the Monte-Carlo calibration.
//!
//! Usage: `cargo run --release -p qdelay-bench --bin ablations [seed]`

use qdelay_bench::suite::SuiteConfig;
use qdelay_bench::table;
use qdelay_predict::bmbp::{Bmbp, BmbpConfig};
use qdelay_predict::BoundMethod;
use qdelay_sim::harness::{self, HarnessConfig};
use qdelay_sim::EvalMetrics;
use qdelay_trace::catalog;
use qdelay_trace::synth::{self, SynthSettings};
use qdelay_trace::Trace;

/// The queues used for ablations: a contended heavy-tail queue, a fast
/// interactive-style queue, and the nonstationary end-jolt queue.
fn ablation_traces(seed: u64) -> Vec<Trace> {
    let settings = SynthSettings::with_seed(seed);
    ["datastar/normal", "tacc2/serial", "lanl/short"]
        .iter()
        .map(|key| {
            let (m, q) = key.split_once('/').expect("well-formed key");
            let mut p = catalog::find(m, q).expect("catalog row");
            p.job_count = p.job_count.min(20_000);
            synth::generate(&p, &settings)
        })
        .collect()
}

fn run_bmbp(trace: &Trace, config: BmbpConfig, harness_cfg: &HarnessConfig) -> EvalMetrics {
    let mut p = Bmbp::new(config);
    harness::run(trace, &mut p, harness_cfg).metrics()
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let traces = ablation_traces(seed);
    let base_harness = SuiteConfig::default().harness;

    println!("BMBP ablations (seed {seed}; 3 representative queues)\n");
    let header: Vec<String> = ["Variant", "Queue", "Correct", "Median ratio"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    let mut push = |variant: &str, trace: &Trace, m: EvalMetrics| {
        rows.push(vec![
            variant.to_string(),
            format!("{}/{}", trace.machine(), trace.queue()),
            format!("{:.3}", m.correct_fraction),
            format!("{:.2e}", m.median_ratio),
        ]);
    };

    for trace in &traces {
        // 1. Epoch length.
        for (label, epoch) in [("epoch=300s (paper)", 300.0), ("epoch=0s (per-job)", 0.0)] {
            let cfg = HarnessConfig {
                epoch_secs: epoch,
                ..base_harness
            };
            push(label, trace, run_bmbp(trace, BmbpConfig::default(), &cfg));
        }
        // 2. Bound method.
        for (label, method) in [
            ("bound=exact", BoundMethod::Exact),
            ("bound=approx", BoundMethod::Approx),
        ] {
            let cfg = BmbpConfig {
                method,
                ..BmbpConfig::default()
            };
            push(label, trace, run_bmbp(trace, cfg, &base_harness));
        }
        // 3. Trimming.
        let cfg = BmbpConfig {
            trimming: false,
            ..BmbpConfig::default()
        };
        push("trimming=off", trace, run_bmbp(trace, cfg, &base_harness));
        // 4. Threshold override.
        for t in [2usize, 3, 5, 8] {
            let cfg = BmbpConfig {
                threshold_override: Some(t),
                ..BmbpConfig::default()
            };
            push(&format!("threshold={t}"), trace, run_bmbp(trace, cfg, &base_harness));
        }
    }
    print!("{}", table::render(&header, &rows, 2));
    println!("\nExpected shape:");
    println!("  * epoch 0 vs 300 s: near-identical (paper section 5.1);");
    println!("  * exact vs approx: identical to within one order statistic;");
    println!("  * trimming off: lower correctness on the nonstationary lanl/short;");
    println!("  * tiny thresholds trim too eagerly (looser bounds), huge ones adapt late.");
}
