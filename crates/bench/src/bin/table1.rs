//! Regenerates the paper's **Table 1**: per-queue job counts, mean, median,
//! and standard deviation of queue delay — paper values side by side with
//! the calibrated synthetic traces this reproduction actually evaluates on.
//!
//! Usage: `cargo run --release -p qdelay-bench --bin table1 [seed]`

use qdelay_bench::table;
use qdelay_trace::catalog;
use qdelay_trace::synth::{self, SynthSettings};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let settings = SynthSettings::with_seed(seed);
    println!("Table 1 reproduction — synthetic traces calibrated to the paper");
    println!("(seed {seed}; paper columns first, generated columns second)\n");

    let header: Vec<String> = [
        "Site/Machine",
        "Queue",
        "Jobs",
        "Avg(paper)",
        "Med(paper)",
        "Std(paper)",
        "Avg(gen)",
        "Med(gen)",
        "Std(gen)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let mut rows = Vec::new();
    for profile in catalog::paper_catalog() {
        let trace = synth::generate(&profile, &settings);
        let s = trace.summary().expect("every catalog trace has >= 2 jobs");
        rows.push(vec![
            profile.machine.to_string(),
            profile.queue.to_string(),
            profile.job_count.to_string(),
            format!("{:.0}", profile.mean_wait),
            format!("{:.0}", profile.median_wait),
            format!("{:.0}", profile.std_wait),
            format!("{:.0}", s.mean),
            format!("{:.0}", s.median),
            format!("{:.0}", s.std_dev),
        ]);
    }
    print!("{}", table::render(&header, &rows, 2));
    println!("\nMedians are pinned by construction; means/stds match in shape");
    println!("(heavy tails: median << mean, std >= mean), not to the digit.");
}
