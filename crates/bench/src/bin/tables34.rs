//! Regenerates the paper's **Table 3** (fraction of correct predictions per
//! queue, three methods) and **Table 4** (median ratio of actual to
//! predicted wait), over the 32 queue rows the paper evaluates.
//!
//! Markers: `*` = method failed the 0.95 correctness target on that queue;
//! `^` = tightest bounds among the correct methods (the paper's boldface).
//!
//! Usage: `cargo run --release -p qdelay-bench --bin tables34 [seed [quick]]`
//! `quick` truncates every queue to 5000 jobs for a fast smoke run.

use qdelay_bench::suite::{self, MethodKind, SuiteConfig};
use qdelay_bench::table;
use qdelay_trace::catalog;
use qdelay_trace::synth::SynthSettings;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let quick = std::env::args().nth(2).is_some_and(|s| s == "quick");

    let mut profiles = catalog::queue_table_catalog();
    if quick {
        for p in &mut profiles {
            p.job_count = p.job_count.min(5000);
        }
    }
    let config = SuiteConfig {
        synth: SynthSettings::with_seed(seed),
        ..SuiteConfig::default()
    };
    eprintln!(
        "evaluating {} queues x 3 methods (seed {seed}{}) ...",
        profiles.len(),
        if quick { ", quick" } else { "" }
    );
    let started = std::time::Instant::now();
    let runs = suite::evaluate_catalog(&profiles, &config);
    eprintln!("done in {:.1} s", started.elapsed().as_secs_f64());

    let grouped = suite::group_by_queue(&runs);
    let q = 0.95;

    // ---- Table 3: correctness fractions ----
    let header: Vec<String> = ["Machine", "Queue", "BMBP", "logn NoTrim", "logn Trim"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows3 = Vec::new();
    let mut rows4 = Vec::new();
    let mut bmbp_correct = 0usize;
    let mut notrim_correct = 0usize;
    let mut trim_correct = 0usize;
    let mut bmbp_wins = 0usize;
    for ((machine, queue), methods) in &grouped {
        let winner = suite::most_accurate_correct(methods, q);
        let mut row3 = vec![machine.clone(), queue.clone()];
        let mut row4 = vec![machine.clone(), queue.clone()];
        for kind in MethodKind::ALL {
            let run = &methods[&kind];
            let frac = run.metrics.correct_fraction;
            let correct = run.metrics.is_correct(q);
            row3.push(table::fraction_cell(frac, q, winner == Some(kind)));
            row4.push(table::ratio_cell(
                run.metrics.median_ratio,
                correct,
                winner == Some(kind),
            ));
            match kind {
                MethodKind::Bmbp => bmbp_correct += correct as usize,
                MethodKind::LogNormalNoTrim => notrim_correct += correct as usize,
                MethodKind::LogNormalTrim => trim_correct += correct as usize,
            }
        }
        if winner == Some(MethodKind::Bmbp) {
            bmbp_wins += 1;
        }
        rows3.push(row3);
        rows4.push(row4);
    }

    println!("\nTable 3 — fraction of correct 95/95 upper-bound predictions");
    println!("('*' = below 0.95; '^' = tightest correct method)\n");
    print!("{}", table::render(&header, &rows3, 2));

    println!("\nTable 4 — median(actual/predicted); smaller = more conservative\n");
    print!("{}", table::render(&header, &rows4, 2));

    let n = grouped.len();
    println!("\nSummary (paper shape to verify):");
    println!("  BMBP correct on {bmbp_correct}/{n} queues (paper: 31/32 — all but lanl/short)");
    println!("  logn NoTrim correct on {notrim_correct}/{n} (paper: fails on ~13 queues)");
    println!("  logn Trim  correct on {trim_correct}/{n} (paper: fails on ~4 queues)");
    println!("  BMBP tightest-correct on {bmbp_wins}/{n} queues (paper: 'a large majority')");

    let json = suite::runs_to_json(&runs).to_string_pretty();
    let path = "results_tables34.json";
    if std::fs::write(path, json).is_ok() {
        println!("  per-queue JSON written to {path}");
    }
}
