//! Regenerates the paper's **Figure 1**: the BMBP 95/95 upper bound over
//! one day, SDSC Datastar "normal" versus TACC Lonestar (tacc2) "normal",
//! on a log scale.
//!
//! The paper's point: between ~6:50 AM and ~3:25 PM on 2005-02-24 a user
//! could know, with 95% confidence, that a job would start within seconds
//! at TACC but might wait days at SDSC. The reproduction shows the same
//! orders-of-magnitude separation.
//!
//! Usage: `cargo run --release -p qdelay-bench --bin figure1 [seed]`
//! Emits a CSV (`figure1.csv`) plus an ASCII rendering.

use qdelay_bench::table;
use qdelay_predict::bmbp::Bmbp;
use qdelay_sim::harness::{self, HarnessConfig, SampleWindow};
use qdelay_trace::catalog;
use qdelay_trace::synth::{self, SynthSettings};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let settings = SynthSettings::with_seed(seed);

    let ds_profile = catalog::find("datastar", "normal").expect("catalog row");
    let tacc_profile = catalog::find("tacc2", "normal").expect("catalog row");

    // Figure 1 shows 2005-02-24; both traces cover early 2005. Sample that
    // day at 10-minute resolution.
    let day = 1_109_203_200u64; // 2005-02-24 00:00 UTC
    let window = SampleWindow {
        start: day,
        end: day + 86_400,
        step: 600,
    };

    let mut series: Vec<(u64, Option<f64>, Option<f64>)> = Vec::new();
    let mut columns = Vec::new();
    for profile in [&ds_profile, &tacc_profile] {
        let trace = synth::generate(profile, &settings);
        let mut bmbp = Bmbp::with_defaults();
        let cfg = HarnessConfig {
            sample: Some(window),
            ..HarnessConfig::default()
        };
        let res = harness::run(&trace, &mut bmbp, &cfg);
        columns.push(res.samples);
    }
    let (ds, tacc) = (&columns[0], &columns[1]);
    for (a, b) in ds.iter().zip(tacc.iter()) {
        debug_assert_eq!(a.time, b.time);
        series.push((a.time, a.bound, b.bound));
    }

    // CSV for plotting.
    let mut csv = String::from("unix_time,datastar_normal_bound,tacc2_normal_bound\n");
    for (t, a, b) in &series {
        csv.push_str(&format!(
            "{t},{},{}\n",
            a.map_or(String::new(), |v| format!("{v:.1}")),
            b.map_or(String::new(), |v| format!("{v:.1}")),
        ));
    }
    let path = "figure1.csv";
    let wrote = std::fs::write(path, csv).is_ok();

    println!("Figure 1 — predicted 95/95 queue-delay upper bounds, 2005-02-24");
    println!("(seed {seed}; columns: time, datastar bound, tacc2 bound; log bars)\n");
    // Print every 6th sample (hourly) to keep the ASCII plot readable.
    let hourly: Vec<(u64, Option<f64>, Option<f64>)> =
        series.iter().copied().step_by(6).collect();
    print!(
        "{}",
        table::ascii_log_plot(("datastar/normal", "tacc2/normal"), &hourly, 60)
    );

    // The paper's headline comparison.
    fn median_of(values: impl Iterator<Item = Option<f64>>) -> Option<f64> {
        let mut v: Vec<f64> = values.flatten().collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v.get(v.len() / 2).copied()
    }
    let ds_med = median_of(series.iter().map(|s| s.1));
    let tacc_med = median_of(series.iter().map(|s| s.2));
    if let (Some(ds_med), Some(tacc_med)) = (ds_med, tacc_med) {
        println!(
            "\nmedian bound over the day: datastar {} vs tacc2 {} ({}x separation)",
            table::human_secs(ds_med),
            table::human_secs(tacc_med),
            (ds_med / tacc_med.max(1.0)).round()
        );
        println!("(paper: ~4 days at SDSC vs ~12 seconds at TACC)");
    }
    if wrote {
        println!("series written to {path}");
    }
}
