//! Regenerates the paper's **Tables 5, 6 and 7**: fraction of correct
//! predictions per queue *and processor-count range* (1-4, 5-16, 17-64,
//! 65+) for BMBP, log-normal without trimming, and log-normal with
//! trimming. Cells with fewer than 1000 jobs print `-`, as in the paper.
//!
//! Usage: `cargo run --release -p qdelay-bench --bin tables567 [seed [quick]]`

use qdelay_bench::suite::{self, MethodKind, SuiteConfig};
use qdelay_bench::table;
use qdelay_trace::catalog;
use qdelay_trace::synth::SynthSettings;
use qdelay_trace::ProcRange;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let quick = std::env::args().nth(2).is_some_and(|s| s == "quick");

    let mut profiles = catalog::proc_table_catalog();
    if quick {
        for p in &mut profiles {
            p.job_count = p.job_count.min(8000);
        }
    }
    let config = SuiteConfig {
        synth: SynthSettings::with_seed(seed),
        ..SuiteConfig::default()
    };
    eprintln!(
        "evaluating {} queues x 3 methods x 4 ranges (seed {seed}{}) ...",
        profiles.len(),
        if quick { ", quick" } else { "" }
    );
    let started = std::time::Instant::now();
    let runs = suite::evaluate_catalog(&profiles, &config);
    eprintln!("done in {:.1} s", started.elapsed().as_secs_f64());

    let grouped = suite::group_by_queue(&runs);
    let q = 0.95;
    let header: Vec<String> = ["Machine", "Queue", "1-4", "5-16", "17-64", "65+"]
        .iter()
        .map(|s| s.to_string())
        .collect();

    for (kind, table_no) in [
        (MethodKind::Bmbp, 5),
        (MethodKind::LogNormalNoTrim, 6),
        (MethodKind::LogNormalTrim, 7),
    ] {
        let mut rows = Vec::new();
        let mut cells = 0usize;
        let mut correct_cells = 0usize;
        for ((machine, queue), methods) in &grouped {
            let run = &methods[&kind];
            let mut row = vec![machine.clone(), queue.clone()];
            for range in ProcRange::ALL {
                match run.per_range.get(&range) {
                    Some(m) => {
                        cells += 1;
                        correct_cells += m.is_correct(q) as usize;
                        row.push(table::fraction_cell(m.correct_fraction, q, false));
                    }
                    None => row.push("-".to_string()),
                }
            }
            rows.push(row);
        }
        println!(
            "\nTable {table_no} — {} correctness by queue and processor range",
            kind.label()
        );
        println!("('-' = fewer than 1000 jobs in the cell; '*' = below 0.95)\n");
        print!("{}", table::render(&header, &rows, 2));
        println!("\n  {} of {} populated cells correct", correct_cells, cells);
        match kind {
            MethodKind::Bmbp => {
                println!("  (paper Table 5: BMBP correct in every populated cell)")
            }
            MethodKind::LogNormalNoTrim => {
                println!("  (paper Table 6: fails in roughly a third of the cells)")
            }
            MethodKind::LogNormalTrim => {
                println!("  (paper Table 7: better than NoTrim, still several failures)")
            }
        }
    }

    let json = suite::runs_to_json(&runs).to_string_pretty();
    let path = "results_tables567.json";
    if std::fs::write(path, json).is_ok() {
        println!("\nper-cell JSON written to {path}");
    }
}
