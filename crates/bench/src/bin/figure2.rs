//! Regenerates the paper's **Figure 2**: BMBP 95/95 upper bounds for jobs
//! requesting 1-4 processors versus 17-64 processors on Datastar's "normal"
//! queue during June 2004 — the month the paper found, to its authors'
//! surprise, that *larger* jobs were favored.
//!
//! The reproduction generates that situation mechanistically: a space-shared
//! cluster under EASY backfill whose administrators temporarily boost the
//! priority of large jobs mid-trace (the kind of unannounced policy change
//! §5.2 describes). BMBP, fed only the per-range wait histories, should
//! forecast the advantage of submitting larger jobs during the boosted
//! window.
//!
//! Usage: `cargo run --release -p qdelay-bench --bin figure2 [seed]`
//! Emits `figure2.csv` plus an ASCII rendering.

use qdelay_batchsim::engine::Simulation;
use qdelay_batchsim::policy::{PolicyChange, PolicySchedule, SchedulerPolicy};
use qdelay_batchsim::workload::WorkloadConfig;
use qdelay_batchsim::{MachineConfig, QueueSpec};
use qdelay_bench::table;
use qdelay_predict::bmbp::Bmbp;
use qdelay_sim::harness::{self, HarnessConfig, SampleWindow};
use qdelay_trace::ProcRange;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // A Datastar-shaped machine: one contended "normal" queue.
    let machine = MachineConfig {
        procs: 256,
        queues: vec![QueueSpec::new("normal", 10)],
    };
    const DAY: u64 = 86_400;
    // The favoritism era starts at day 30 and runs to the end of the trace.
    // BMBP's bound adapts *upward* fast (misses trigger change-point trims)
    // but *downward* only by dilution — an over-conservative bound never
    // misses, so the group whose waits collapsed must accumulate enough new
    // small waits to pull the 0.95 order statistic down. The sampled
    // "Figure 2 month" (days 80-110) therefore sits well inside the era,
    // like the paper's June 2004 sat inside a favoritism period.
    let boost_start = 30 * DAY;
    let sample_from = 80 * DAY;
    let sample_to = 110 * DAY;
    let mut schedule = PolicySchedule::new();
    // Two coupled administrator actions, as real favoritism requires: a
    // priority boost alone is toothless under EASY (only the head job is
    // protected; large jobs still wait out processor drains), so the site
    // also switches to conservative backfill, where every boosted large job
    // receives a reservation that small jobs cannot delay.
    schedule.add(
        boost_start,
        PolicyChange::SetPolicy(SchedulerPolicy::ConservativeBackfill),
    );
    schedule.add(
        boost_start,
        PolicyChange::SetLargeJobBoost {
            min_procs: 17,
            boost: 1_000,
        },
    );
    let workload = WorkloadConfig {
        days: 120,
        // ~75% utilization: mean job is ~12 procs x ~9600 s at this mix, so
        // 140 jobs/day keeps a 256-proc machine contended without diverging
        // (overload drowns the priority signal in queue growth).
        jobs_per_day: 140.0,
        proc_mix: qdelay_trace::synth::ProcMix::new([0.50, 0.30, 0.18, 0.02]),
        seed,
        ..WorkloadConfig::default()
    };
    eprintln!("simulating 120 days of a 256-proc machine under EASY backfill ...");
    let mut sim = Simulation::new(machine, SchedulerPolicy::EasyBackfill).with_schedule(schedule);
    let traces = sim.run(&workload);
    let normal = &traces[0];
    eprintln!(
        "machine produced {} jobs; mean wait {:.0} s",
        normal.len(),
        normal.summary().map_or(0.0, |s| s.mean)
    );

    // Per-range BMBP bounds, sampled from before the era through the
    // sampled month.
    let window = SampleWindow {
        start: 10 * DAY,
        end: sample_to,
        step: 6 * 3600,
    };
    let mut series: Vec<(u64, Option<f64>, Option<f64>)> = Vec::new();
    let mut columns = Vec::new();
    for range in [ProcRange::R1To4, ProcRange::R17To64] {
        let sub = normal.filter_procs(range);
        let mut bmbp = Bmbp::with_defaults();
        let cfg = HarnessConfig {
            sample: Some(window),
            ..HarnessConfig::default()
        };
        let res = harness::run(&sub, &mut bmbp, &cfg);
        columns.push(res.samples);
    }
    for (a, b) in columns[0].iter().zip(columns[1].iter()) {
        series.push((a.time, a.bound, b.bound));
    }

    let mut csv = String::from("unix_time,bound_1to4,bound_17to64,boosted\n");
    for (t, a, b) in &series {
        csv.push_str(&format!(
            "{t},{},{},{}\n",
            a.map_or(String::new(), |v| format!("{v:.1}")),
            b.map_or(String::new(), |v| format!("{v:.1}")),
            (*t >= boost_start) as u8
        ));
    }
    let wrote = std::fs::write("figure2.csv", csv).is_ok();

    println!("\nFigure 2 — 95/95 bounds by processor range (seed {seed})");
    println!("large-job priority boost active from day 30; samples every 6 h\n");
    let daily: Vec<(u64, Option<f64>, Option<f64>)> = series.iter().copied().step_by(4).collect();
    print!(
        "{}",
        table::ascii_log_plot(("1-4 procs", "17-64 procs"), &daily, 60)
    );

    // Quantify the crossover the paper reports.
    let advantage = |lo: u64, hi: u64| -> (usize, usize) {
        let mut large_better = 0;
        let mut total = 0;
        for (t, a, b) in &series {
            if *t >= lo && *t < hi {
                if let (Some(a), Some(b)) = (a, b) {
                    total += 1;
                    if b < a {
                        large_better += 1;
                    }
                }
            }
        }
        (large_better, total)
    };
    let (before_l, before_t) = advantage(10 * DAY, boost_start);
    let (during_l, during_t) = advantage(sample_from, sample_to);
    println!(
        "\nlarge jobs show the lower bound in {during_l}/{during_t} samples of the \
         Figure-2 month vs {before_l}/{before_t} before the policy change"
    );
    println!("(paper: during June 2004 the 17-64 bound sat *below* the 1-4 bound)");
    if wrote {
        println!("series written to figure2.csv");
    }
}
