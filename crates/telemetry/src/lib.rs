//! # qdelay-telemetry
//!
//! First-party observability for the qdelay workspace: lock-free named
//! [`Counter`]s and [`Gauge`]s, HDR-style log-linear [`LatencyHistogram`]s,
//! an RAII [`Span`] timer (see [`time_scope!`]), and a deterministic
//! [`snapshot`] exporter that renders the whole registry as `qdelay-json`
//! plus a human-readable table.
//!
//! Like `qdelay-rng` and `qdelay-json`, this crate is dependency-free by
//! design: the workspace must build offline, so no `metrics`/`tracing`.
//!
//! ## Instruments are statics; registration is lazy and lock-free
//!
//! Every instrument is declared as a `static` with a `&'static str` name:
//!
//! ```
//! use qdelay_telemetry::{Counter, LatencyHistogram, time_scope};
//!
//! static CACHE_HITS: Counter = Counter::new("doc.cache.hit");
//! static REFIT_NS: LatencyHistogram = LatencyHistogram::new("doc.refit_ns");
//!
//! fn refit() {
//!     time_scope!(&REFIT_NS);   // records elapsed ns into REFIT_NS on drop
//!     CACHE_HITS.incr();
//! }
//! # refit();
//! ```
//!
//! The hot path of `Counter::incr` is one relaxed `fetch_add` plus one
//! relaxed load of a registration flag. The *first* touch of an instrument
//! pushes it onto a global intrusive linked list (a CAS loop on a list
//! head); because the push takes `&'static self`, only statics can
//! register, and the list needs no allocation, no lock, and no teardown.
//!
//! ## Disabled mode is free
//!
//! Building with `--no-default-features` turns every instrument into a
//! zero-sized type whose methods are empty: no atomics, no `Instant`
//! reads, nothing for the optimizer to keep. The API is unchanged, so
//! callers never need `cfg` guards. [`LocalHistogram`] (the per-thread
//! shard type) stays fully functional in both modes because callers read
//! their own local data back; only the flush into the global registry
//! becomes a no-op.
//!
//! ## Snapshots are deterministic
//!
//! [`snapshot`] walks the registries, sorts every section by instrument
//! name, and reads values with relaxed loads. Two identical seeded runs
//! that record identical values therefore export byte-identical JSON
//! (instrument *registration order* is thread-racy, but the sort makes it
//! irrelevant). Wall-clock histograms are of course only deterministic in
//! shape, not in content — determinism tests must stick to
//! logically-derived instruments (counts, depths, pass lengths).

mod histogram;

pub use histogram::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, HistogramSummary, LocalHistogram,
    BUCKET_COUNT,
};

use qdelay_json::Json;

/// A full copy of the registry at one point in time, sorted by name within
/// each section. Plain data — identical in enabled and disabled builds
/// (disabled builds just always produce an empty one).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic event counters, `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Last-value / high-watermark gauges, `(name, value)`.
    pub gauges: Vec<(String, u64)>,
    /// Histogram quantile summaries, `(name, summary)`.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl Snapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Computes per-second rates between `prev` (an earlier snapshot) and
    /// `self`, taken `elapsed_secs` apart: one entry per counter, plus one
    /// per histogram (suffixed `.count`) tracking its record rate. Names
    /// absent from `prev` start from zero; negative deltas (an instrument
    /// reset between samples) clamp to zero. Returns pairs sorted by name;
    /// empty when the window is zero or negative.
    pub fn rates_since(&self, prev: &Snapshot, elapsed_secs: f64) -> Vec<(String, f64)> {
        if !(elapsed_secs > 0.0) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (name, now) in &self.counters {
            let before = prev.counter(name).unwrap_or(0);
            out.push((name.clone(), now.saturating_sub(before) as f64 / elapsed_secs));
        }
        for (name, s) in &self.histograms {
            let before = prev.histogram(name).map(|h| h.count).unwrap_or(0);
            let delta = s.count.saturating_sub(before);
            out.push((format!("{name}.count"), delta as f64 / elapsed_secs));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Renders the snapshot as a `qdelay-json` value with the stable schema
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name: {count,
    /// max, p50, p90, p99, p999}}}`. Sections and keys are sorted by name,
    /// so serialization is byte-deterministic for equal values.
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| (name.clone(), Json::Num(*v as f64)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(name, v)| (name.clone(), Json::Num(*v as f64)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    Json::Obj(vec![
                        ("count".to_string(), Json::Num(s.count as f64)),
                        ("max".to_string(), Json::Num(s.max as f64)),
                        ("p50".to_string(), Json::Num(s.p50 as f64)),
                        ("p90".to_string(), Json::Num(s.p90 as f64)),
                        ("p99".to_string(), Json::Num(s.p99 as f64)),
                        ("p999".to_string(), Json::Num(s.p999 as f64)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("histograms".to_string(), Json::Obj(histograms)),
        ])
    }

    /// Renders a fixed-width human table (for stderr summaries). Empty
    /// sections are omitted; an entirely empty snapshot renders a single
    /// explanatory line.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty() {
            out.push_str("telemetry: no instruments recorded\n");
            return out;
        }
        let name_width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0)
            .max("histogram".len());
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<name_width$} {:>12}", "counter", "value");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name:<name_width$} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "{:<name_width$} {:>12}", "gauge", "value");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "{name:<name_width$} {v:>12}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<name_width$} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
                "histogram", "count", "p50", "p90", "p99", "p99.9", "max"
            );
            for (name, s) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{name:<name_width$} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
                    s.count, s.p50, s.p90, s.p99, s.p999, s.max
                );
            }
        }
        out
    }
}

/// Expands to an RAII [`Span`] bound to the enclosing scope: elapsed
/// nanoseconds are recorded into the given `&'static LatencyHistogram`
/// when the scope exits (on any path, including `?`/panic unwind). With
/// telemetry disabled the span is a zero-sized no-op.
#[macro_export]
macro_rules! time_scope {
    ($hist:expr) => {
        let _qdelay_telemetry_span = $crate::Span::enter($hist);
    };
}

#[cfg(feature = "enabled")]
mod imp {
    use super::histogram::{summarize_counts, HistogramSummary, BUCKET_COUNT};
    use super::{LocalHistogram, Snapshot};
    use std::ptr;
    use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicU8, Ordering};
    use std::time::Instant;

    const UNREGISTERED: u8 = 0;
    const REGISTERING: u8 = 1;
    const REGISTERED: u8 = 2;

    /// One global intrusive list head per instrument kind. Entries are
    /// `&'static` instruments linked through their own `next` pointers, so
    /// registration never allocates.
    static COUNTER_HEAD: AtomicPtr<Counter> = AtomicPtr::new(ptr::null_mut());
    static GAUGE_HEAD: AtomicPtr<Gauge> = AtomicPtr::new(ptr::null_mut());
    static HISTOGRAM_HEAD: AtomicPtr<LatencyHistogram> = AtomicPtr::new(ptr::null_mut());

    /// Pushes `node` onto an intrusive list exactly once. The `state` flag
    /// arbitrates: the thread that wins the `UNREGISTERED -> REGISTERING`
    /// CAS performs the push; everyone else leaves (their value update has
    /// already landed in the instrument's own atomics, so nothing is lost —
    /// the instrument just becomes *visible* when the winner finishes).
    ///
    /// Safety: `node` must be `&'static` (guaranteed by the callers'
    /// `&'static self` receivers) and `next` must belong to `node`.
    fn register_once<T>(
        state: &AtomicU8,
        next: &AtomicPtr<T>,
        head: &AtomicPtr<T>,
        node: *const T,
    ) {
        if state
            .compare_exchange(
                UNREGISTERED,
                REGISTERING,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_err()
        {
            return;
        }
        let node = node as *mut T;
        let mut current = head.load(Ordering::Acquire);
        loop {
            next.store(current, Ordering::Relaxed);
            match head.compare_exchange_weak(
                current,
                node,
                Ordering::Release,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
        state.store(REGISTERED, Ordering::Release);
    }

    /// Iterates an intrusive list, yielding `&'static` entries.
    fn walk<T: 'static>(
        head: &AtomicPtr<T>,
        mut visit: impl FnMut(&'static T),
        next_of: impl Fn(&T) -> &AtomicPtr<T>,
    ) {
        let mut cursor = head.load(Ordering::Acquire);
        while !cursor.is_null() {
            // SAFETY: only `&'static` instruments are ever pushed
            // (register_once is reachable solely through `&'static self`
            // methods), so the pointer is valid for the program's lifetime.
            let entry: &'static T = unsafe { &*cursor };
            cursor = next_of(entry).load(Ordering::Acquire);
            visit(entry);
        }
    }

    /// A monotonically increasing event counter.
    ///
    /// Hot path: one relaxed `fetch_add` + one relaxed flag load.
    pub struct Counter {
        name: &'static str,
        value: AtomicU64,
        reg_state: AtomicU8,
        next: AtomicPtr<Counter>,
    }

    // SAFETY: all fields are atomics plus a shared &'static str.
    unsafe impl Sync for Counter {}

    impl Counter {
        /// Creates a counter; usable in `static` initializers.
        pub const fn new(name: &'static str) -> Self {
            Self {
                name,
                value: AtomicU64::new(0),
                reg_state: AtomicU8::new(UNREGISTERED),
                next: AtomicPtr::new(ptr::null_mut()),
            }
        }

        /// Adds `n`.
        #[inline]
        pub fn add(&'static self, n: u64) {
            self.value.fetch_add(n, Ordering::Relaxed);
            if self.reg_state.load(Ordering::Relaxed) != REGISTERED {
                self.register();
            }
        }

        /// Adds 1.
        #[inline]
        pub fn incr(&'static self) {
            self.add(1);
        }

        /// Current value (relaxed read; 0 in disabled builds).
        pub fn value(&self) -> u64 {
            self.value.load(Ordering::Relaxed)
        }

        #[cold]
        fn register(&'static self) {
            register_once(&self.reg_state, &self.next, &COUNTER_HEAD, self);
        }
    }

    /// A last-value / high-watermark gauge.
    pub struct Gauge {
        name: &'static str,
        value: AtomicU64,
        reg_state: AtomicU8,
        next: AtomicPtr<Gauge>,
    }

    // SAFETY: all fields are atomics plus a shared &'static str.
    unsafe impl Sync for Gauge {}

    impl Gauge {
        /// Creates a gauge; usable in `static` initializers.
        pub const fn new(name: &'static str) -> Self {
            Self {
                name,
                value: AtomicU64::new(0),
                reg_state: AtomicU8::new(UNREGISTERED),
                next: AtomicPtr::new(ptr::null_mut()),
            }
        }

        /// Stores `v` (last-write-wins).
        #[inline]
        pub fn set(&'static self, v: u64) {
            self.value.store(v, Ordering::Relaxed);
            if self.reg_state.load(Ordering::Relaxed) != REGISTERED {
                self.register();
            }
        }

        /// Raises the gauge to `v` if `v` is larger (monotone high-water
        /// mark). Safe under concurrent writers: a CAS loop publishes `v`
        /// only while it still exceeds the observed value, so two racing
        /// `set_max` calls can never regress the mark the way racing
        /// load-then-[`Gauge::set`] sequences could. Values at or below the
        /// current mark cost one relaxed load and *no* write, keeping the
        /// common non-record case free of cache-line contention.
        #[inline]
        pub fn set_max(&'static self, v: u64) {
            let mut current = self.value.load(Ordering::Relaxed);
            while v > current {
                match self.value.compare_exchange_weak(
                    current,
                    v,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(observed) => current = observed,
                }
            }
            if self.reg_state.load(Ordering::Relaxed) != REGISTERED {
                self.register();
            }
        }

        /// Adds `n` to the gauge. Safe under concurrent writers — the
        /// fetch-add cannot lose updates the way racing load-then-
        /// [`Gauge::set`] sequences could, which makes paired
        /// `add`/[`Gauge::sub`] the right shape for level gauges maintained
        /// as deltas from many threads (e.g. per-shard resident counts).
        #[inline]
        pub fn add(&'static self, n: u64) {
            self.value.fetch_add(n, Ordering::Relaxed);
            if self.reg_state.load(Ordering::Relaxed) != REGISTERED {
                self.register();
            }
        }

        /// Subtracts `n` from the gauge, saturating at zero so a stray
        /// extra decrement cannot wrap the level to 2^64.
        #[inline]
        pub fn sub(&'static self, n: u64) {
            let mut current = self.value.load(Ordering::Relaxed);
            loop {
                let next = current.saturating_sub(n);
                match self.value.compare_exchange_weak(
                    current,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(observed) => current = observed,
                }
            }
            if self.reg_state.load(Ordering::Relaxed) != REGISTERED {
                self.register();
            }
        }

        /// Current value (relaxed read; 0 in disabled builds).
        pub fn value(&self) -> u64 {
            self.value.load(Ordering::Relaxed)
        }

        #[cold]
        fn register(&'static self) {
            register_once(&self.reg_state, &self.next, &GAUGE_HEAD, self);
        }
    }

    /// A shared log-linear histogram: 496 `AtomicU32` buckets (~2 KB),
    /// full `u64` range, <= 12.5% relative bucket error. `count` and `max`
    /// are derived from the buckets at snapshot time, so the record hot
    /// path is a single relaxed `fetch_add`.
    pub struct LatencyHistogram {
        name: &'static str,
        buckets: [AtomicU32; BUCKET_COUNT],
        reg_state: AtomicU8,
        next: AtomicPtr<LatencyHistogram>,
    }

    // SAFETY: all fields are atomics plus a shared &'static str.
    unsafe impl Sync for LatencyHistogram {}

    impl LatencyHistogram {
        /// Creates a histogram; usable in `static` initializers.
        pub const fn new(name: &'static str) -> Self {
            Self {
                name,
                buckets: [const { AtomicU32::new(0) }; BUCKET_COUNT],
                reg_state: AtomicU8::new(UNREGISTERED),
                next: AtomicPtr::new(ptr::null_mut()),
            }
        }

        /// Records one sample (typically elapsed nanoseconds).
        #[inline]
        pub fn record(&'static self, value: u64) {
            self.buckets[super::histogram::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            if self.reg_state.load(Ordering::Relaxed) != REGISTERED {
                self.register();
            }
        }

        /// Flushes a per-thread [`LocalHistogram`] shard into this shared
        /// histogram in one pass (one `fetch_add` per *non-empty* bucket,
        /// not per sample).
        pub fn merge_from(&'static self, local: &LocalHistogram) {
            for (index, &c) in local.bucket_counts().iter().enumerate() {
                if c != 0 {
                    self.buckets[index].fetch_add(c, Ordering::Relaxed);
                }
            }
            if self.reg_state.load(Ordering::Relaxed) != REGISTERED {
                self.register();
            }
        }

        /// Quantile summary of the current contents (relaxed reads).
        pub fn summary(&self) -> HistogramSummary {
            summarize_counts(&self.widened())
        }

        fn widened(&self) -> [u64; BUCKET_COUNT] {
            let mut wide = [0u64; BUCKET_COUNT];
            for (dst, src) in wide.iter_mut().zip(self.buckets.iter()) {
                *dst = src.load(Ordering::Relaxed) as u64;
            }
            wide
        }

        #[cold]
        fn register(&'static self) {
            register_once(&self.reg_state, &self.next, &HISTOGRAM_HEAD, self);
        }
    }

    /// RAII timer: records elapsed nanoseconds into a histogram on drop.
    /// Cost when enabled: two `Instant` reads + one atomic `fetch_add`.
    pub struct Span {
        hist: &'static LatencyHistogram,
        start: Instant,
    }

    impl Span {
        /// Starts timing; the measurement lands when the span drops.
        #[inline]
        pub fn enter(hist: &'static LatencyHistogram) -> Span {
            Span {
                hist,
                start: Instant::now(),
            }
        }

        /// Sampled variant for call sites hot enough that the clock reads
        /// themselves would dominate (an incremental BMBP refit is ~40 ns;
        /// two `Instant` reads are ~50 ns). Advances `tick` and times only
        /// every `mask + 1`-th call, so the histogram stays representative
        /// while the amortized cost drops to one local add and a branch.
        /// `mask` must be a power of two minus one.
        #[inline]
        pub fn enter_sampled(
            hist: &'static LatencyHistogram,
            tick: &mut u32,
            mask: u32,
        ) -> Option<Span> {
            debug_assert!((mask + 1).is_power_of_two());
            *tick = tick.wrapping_add(1);
            if *tick & mask == 0 {
                Some(Span::enter(hist))
            } else {
                None
            }
        }
    }

    impl Drop for Span {
        #[inline]
        fn drop(&mut self) {
            let nanos = self.start.elapsed().as_nanos();
            self.hist.record(nanos.min(u64::MAX as u128) as u64);
        }
    }

    /// Reads every registered instrument into a [`Snapshot`], sorting each
    /// section by name so the result is deterministic regardless of
    /// registration (i.e. first-touch) order.
    pub fn snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        walk(
            &COUNTER_HEAD,
            |c| snap.counters.push((c.name.to_string(), c.value())),
            |c| &c.next,
        );
        walk(
            &GAUGE_HEAD,
            |g| snap.gauges.push((g.name.to_string(), g.value())),
            |g| &g.next,
        );
        walk(
            &HISTOGRAM_HEAD,
            |h| snap.histograms.push((h.name.to_string(), h.summary())),
            |h| &h.next,
        );
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }

    /// Zeroes every registered instrument's *values* while keeping the
    /// registrations (the registered set only ever grows within a
    /// process). Meant for tests and repeated in-process runs.
    pub fn reset() {
        walk(
            &COUNTER_HEAD,
            |c| c.value.store(0, Ordering::Relaxed),
            |c| &c.next,
        );
        walk(
            &GAUGE_HEAD,
            |g| g.value.store(0, Ordering::Relaxed),
            |g| &g.next,
        );
        walk(
            &HISTOGRAM_HEAD,
            |h| {
                for b in h.buckets.iter() {
                    b.store(0, Ordering::Relaxed);
                }
            },
            |h| &h.next,
        );
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    //! Zero-cost stubs: every instrument is a ZST, every method is empty,
    //! and nothing touches an atomic or reads a clock. The API mirrors the
    //! enabled module exactly so callers compile unchanged.

    use super::{LocalHistogram, Snapshot};

    /// Disabled counter: zero-sized no-op.
    pub struct Counter;

    impl Counter {
        /// No-op constructor (name is discarded).
        pub const fn new(_name: &'static str) -> Self {
            Counter
        }

        /// No-op.
        #[inline]
        pub fn add(&'static self, _n: u64) {}

        /// No-op.
        #[inline]
        pub fn incr(&'static self) {}

        /// Always 0 in disabled builds.
        pub fn value(&self) -> u64 {
            0
        }
    }

    /// Disabled gauge: zero-sized no-op.
    pub struct Gauge;

    impl Gauge {
        /// No-op constructor (name is discarded).
        pub const fn new(_name: &'static str) -> Self {
            Gauge
        }

        /// No-op.
        #[inline]
        pub fn set(&'static self, _v: u64) {}

        /// No-op.
        #[inline]
        pub fn set_max(&'static self, _v: u64) {}

        /// No-op.
        #[inline]
        pub fn add(&'static self, _n: u64) {}

        /// No-op.
        #[inline]
        pub fn sub(&'static self, _n: u64) {}

        /// Always 0 in disabled builds.
        pub fn value(&self) -> u64 {
            0
        }
    }

    /// Disabled histogram: zero-sized no-op.
    pub struct LatencyHistogram;

    impl LatencyHistogram {
        /// No-op constructor (name is discarded).
        pub const fn new(_name: &'static str) -> Self {
            LatencyHistogram
        }

        /// No-op.
        #[inline]
        pub fn record(&'static self, _value: u64) {}

        /// No-op (local shards still work; the flush is dropped).
        pub fn merge_from(&'static self, _local: &LocalHistogram) {}

        /// Always empty in disabled builds.
        pub fn summary(&self) -> super::HistogramSummary {
            super::HistogramSummary::default()
        }
    }

    /// Disabled span: zero-sized, no clock reads.
    pub struct Span;

    impl Span {
        /// No-op.
        #[inline]
        pub fn enter(_hist: &'static LatencyHistogram) -> Span {
            Span
        }

        /// No-op: no clock reads, no tick bookkeeping.
        #[inline]
        pub fn enter_sampled(
            _hist: &'static LatencyHistogram,
            _tick: &mut u32,
            _mask: u32,
        ) -> Option<Span> {
            None
        }
    }

    /// Always empty in disabled builds.
    pub fn snapshot() -> Snapshot {
        Snapshot::default()
    }

    /// No-op in disabled builds.
    pub fn reset() {}
}

pub use imp::{snapshot, reset, Counter, Gauge, LatencyHistogram, Span};

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic value stream exercising several octaves: small exact
    /// values, mid-range, and large (shifted) magnitudes.
    fn sample_values(seed: u64, len: usize) -> Vec<u64> {
        let mut rng = qdelay_rng::StdRng::seed_from_u64(seed);
        use qdelay_rng::Rng;
        (0..len)
            .map(|i| {
                let raw = rng.next_u64();
                match i % 4 {
                    0 => raw % 8,            // exact buckets
                    1 => raw % 10_000,       // mid-range
                    2 => raw % 100_000_000,  // ~latency ns
                    _ => raw >> (raw % 24),  // heavy tail across octaves
                }
            })
            .collect()
    }

    #[cfg(feature = "enabled")]
    mod enabled {
        use super::*;
        use std::sync::Mutex;

        /// The registry is process-global and Rust runs tests on parallel
        /// threads; tests that snapshot or reset must serialize.
        static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

        fn lock() -> std::sync::MutexGuard<'static, ()> {
            REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
        }

        #[test]
        fn quantiles_match_sorted_oracle_within_one_bucket() {
            // Property test: for several seeds and sizes, every reported
            // quantile lands in exactly the bucket of the oracle order
            // statistic, which bounds relative error by the bucket width
            // (12.5%).
            for seed in [1u64, 7, 42, 1234] {
                for len in [1usize, 2, 10, 1000, 5000] {
                    let values = sample_values(seed, len);
                    let mut hist = LocalHistogram::new();
                    for &v in &values {
                        hist.record(v);
                    }
                    let mut sorted = values.clone();
                    sorted.sort_unstable();
                    for q in [0.5, 0.9, 0.99, 0.999] {
                        let rank = ((q * len as f64).ceil() as usize).clamp(1, len);
                        let oracle = sorted[rank - 1];
                        let got = hist.quantile(q);
                        assert_eq!(
                            bucket_index(got),
                            bucket_index(oracle),
                            "seed {seed} len {len} q {q}: got {got}, oracle {oracle}"
                        );
                        assert!(got <= oracle, "quantile must not overshoot");
                        assert!(oracle <= bucket_upper_bound(bucket_index(got)));
                    }
                    let max_oracle = *sorted.last().unwrap();
                    assert_eq!(bucket_index(hist.max()), bucket_index(max_oracle));
                }
            }
        }

        #[test]
        fn merged_shards_equal_single_histogram() {
            // Recording through 4 per-thread shards and merging (both
            // Local::merge and the atomic merge_from path) must be
            // indistinguishable from recording into one histogram.
            static MERGED: LatencyHistogram = LatencyHistogram::new("test.merge.shards");
            let _guard = lock();
            reset();

            let values = sample_values(99, 4000);
            let mut single = LocalHistogram::new();
            let mut shards = vec![LocalHistogram::new(); 4];
            for (i, &v) in values.iter().enumerate() {
                single.record(v);
                shards[i % 4].record(v);
            }
            let mut locally_merged = LocalHistogram::new();
            for shard in &shards {
                locally_merged.merge(shard);
                MERGED.merge_from(shard);
            }
            assert_eq!(locally_merged.summary(), single.summary());
            assert_eq!(MERGED.summary(), single.summary());
            assert_eq!(single.count(), values.len() as u64);
        }

        #[test]
        fn registry_snapshot_and_reset() {
            static HITS: Counter = Counter::new("test.reg.hits");
            static DEPTH: Gauge = Gauge::new("test.reg.depth");
            static LAT: LatencyHistogram = LatencyHistogram::new("test.reg.lat_ns");
            let _guard = lock();
            reset();

            HITS.add(3);
            DEPTH.set_max(7);
            DEPTH.set_max(5); // high-watermark keeps 7
            LAT.record(100);
            LAT.record(200);

            let snap = snapshot();
            assert_eq!(snap.counter("test.reg.hits"), Some(3));
            assert_eq!(snap.gauge("test.reg.depth"), Some(7));
            let h = snap.histogram("test.reg.lat_ns").expect("histogram");
            assert_eq!(h.count, 2);
            // Sections are sorted by name.
            for section in [&snap.counters, &snap.gauges] {
                assert!(section.windows(2).all(|w| w[0].0 <= w[1].0));
            }
            assert!(snap.histograms.windows(2).all(|w| w[0].0 <= w[1].0));

            // Spans feed histograms.
            {
                time_scope!(&LAT);
            }
            assert_eq!(LAT.summary().count, 3);

            // reset zeroes values but keeps the instruments visible.
            reset();
            let snap = snapshot();
            assert_eq!(snap.counter("test.reg.hits"), Some(0));
            assert_eq!(snap.gauge("test.reg.depth"), Some(0));
            assert_eq!(snap.histogram("test.reg.lat_ns").unwrap().count, 0);
        }

        #[test]
        fn identical_runs_export_identical_json_bytes() {
            static EVENTS: Counter = Counter::new("test.det.events");
            static PEAK: Gauge = Gauge::new("test.det.peak");
            static SIZES: LatencyHistogram = LatencyHistogram::new("test.det.sizes");
            let _guard = lock();

            let run = || {
                reset();
                for &v in &sample_values(2024, 500) {
                    EVENTS.incr();
                    PEAK.set_max(v % 1000);
                    SIZES.record(v);
                }
                // Restrict to this test's instruments so values mutated by
                // concurrent-in-process history (other tests hold the lock,
                // but reset() wipes them to a fixed 0 anyway) can't differ.
                let snap = snapshot();
                snap.to_json().to_string_pretty()
            };
            let first = run();
            let second = run();
            assert_eq!(first, second, "two identical seeded runs must export identical bytes");
            assert!(first.contains("test.det.events"));
        }

        #[test]
        fn concurrent_first_touch_registers_exactly_once() {
            static RACY: Counter = Counter::new("test.race.counter");
            let _guard = lock();
            reset();
            std::thread::scope(|scope| {
                for _ in 0..8 {
                    scope.spawn(|| {
                        for _ in 0..1000 {
                            RACY.incr();
                        }
                    });
                }
            });
            assert_eq!(RACY.value(), 8000);
            let snap = snapshot();
            assert_eq!(
                snap.counters.iter().filter(|(n, _)| n == "test.race.counter").count(),
                1,
                "instrument must register exactly once"
            );
        }

        #[test]
        fn set_max_is_monotone_under_concurrent_writers() {
            static HWM: Gauge = Gauge::new("test.race.hwm");
            let _guard = lock();
            reset();
            // 8 writers publish interleaved ascending/descending ramps; the
            // CAS loop must retain exactly the global maximum regardless of
            // which interleaving the scheduler produces. (A last-write-wins
            // `set` here routinely ends on a non-maximal value.)
            std::thread::scope(|scope| {
                for t in 0..8u64 {
                    scope.spawn(move || {
                        for i in 0..1000u64 {
                            // Per-thread peak: 8 * 999 + t; global max at t=7.
                            HWM.set_max(8 * i + t);
                            HWM.set_max(8 * (999 - i) + t);
                        }
                    });
                }
            });
            assert_eq!(HWM.value(), 8 * 999 + 7);
            // Lower values never regress the mark.
            HWM.set_max(0);
            assert_eq!(HWM.value(), 8 * 999 + 7);
            // Equal values are a no-op, not a spurious bump.
            HWM.set_max(8 * 999 + 7);
            assert_eq!(HWM.value(), 8 * 999 + 7);
        }

        #[test]
        fn sampled_spans_fire_once_per_period() {
            static SAMPLED: LatencyHistogram = LatencyHistogram::new("test.sampled.hist");
            let _guard = lock();
            let before = SAMPLED.summary().count;
            let mut tick = 0u32;
            for _ in 0..256 {
                let _span = Span::enter_sampled(&SAMPLED, &mut tick, 63);
            }
            assert_eq!(
                SAMPLED.summary().count - before,
                256 / 64,
                "mask 63 must time exactly one call in 64"
            );
        }
    }

    #[cfg(not(feature = "enabled"))]
    mod disabled {
        use super::*;

        #[test]
        fn instruments_are_zero_sized_and_inert() {
            assert_eq!(std::mem::size_of::<Counter>(), 0);
            assert_eq!(std::mem::size_of::<Gauge>(), 0);
            assert_eq!(std::mem::size_of::<LatencyHistogram>(), 0);
            assert_eq!(std::mem::size_of::<Span>(), 0);

            static C: Counter = Counter::new("off.counter");
            static G: Gauge = Gauge::new("off.gauge");
            static H: LatencyHistogram = LatencyHistogram::new("off.hist");
            C.add(5);
            C.incr();
            G.set(9);
            G.set_max(11);
            H.record(1234);
            {
                time_scope!(&H);
            }
            assert_eq!(C.value(), 0);
            assert_eq!(G.value(), 0);
            assert_eq!(H.summary(), HistogramSummary::default());
            assert_eq!(snapshot(), Snapshot::default());
            reset();
        }

        #[test]
        fn local_histograms_still_work_when_disabled() {
            let values = sample_values(5, 300);
            let mut h = LocalHistogram::new();
            for &v in &values {
                h.record(v);
            }
            assert_eq!(h.count(), values.len() as u64);
            assert!(h.quantile(0.5) <= h.quantile(0.99));
        }
    }

    #[test]
    fn rates_since_reports_counter_and_histogram_deltas() {
        let prev = Snapshot {
            counters: vec![("a.hits".into(), 100), ("a.misses".into(), 50)],
            gauges: vec![],
            histograms: vec![(
                "a.lat_ns".into(),
                HistogramSummary { count: 10, ..HistogramSummary::default() },
            )],
        };
        let now = Snapshot {
            counters: vec![("a.hits".into(), 300), ("a.misses".into(), 40), ("b.new".into(), 8)],
            gauges: vec![],
            histograms: vec![(
                "a.lat_ns".into(),
                HistogramSummary { count: 30, ..HistogramSummary::default() },
            )],
        };
        let rates = now.rates_since(&prev, 2.0);
        let get = |name: &str| rates.iter().find(|(n, _)| n == name).map(|&(_, r)| r);
        assert_eq!(get("a.hits"), Some(100.0));
        // Negative delta (reset between samples) clamps to zero.
        assert_eq!(get("a.misses"), Some(0.0));
        // Instruments absent from the earlier snapshot start from zero.
        assert_eq!(get("b.new"), Some(4.0));
        assert_eq!(get("a.lat_ns.count"), Some(10.0));
        // Sorted by name.
        let names: Vec<&str> = rates.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        // A zero or negative window yields no rates rather than infinities.
        assert!(now.rates_since(&prev, 0.0).is_empty());
    }

    #[test]
    fn snapshot_table_and_json_shapes() {
        let snap = Snapshot {
            counters: vec![("a.hits".into(), 3)],
            gauges: vec![("a.depth".into(), 7)],
            histograms: vec![(
                "a.lat_ns".into(),
                HistogramSummary {
                    count: 2,
                    max: 208,
                    p50: 100,
                    p90: 208,
                    p99: 208,
                    p999: 208,
                },
            )],
        };
        let json = snap.to_json();
        assert_eq!(
            json.get("counters").and_then(|c| c.get("a.hits")).and_then(Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            json.get("histograms")
                .and_then(|h| h.get("a.lat_ns"))
                .and_then(|h| h.get("p99"))
                .and_then(Json::as_f64),
            Some(208.0)
        );
        let table = snap.render_table();
        assert!(table.contains("a.hits"));
        assert!(table.contains("p99.9"));
        assert!(Snapshot::default().render_table().contains("no instruments"));
    }
}
