//! Log-linear bucket layout shared by [`LocalHistogram`] (plain counters,
//! always compiled) and the atomic `LatencyHistogram` in `lib.rs`.
//!
//! The layout is the classic HDR-style log-linear scheme: values below
//! `2^SUB_BITS` get one exact bucket each, and every power-of-two octave
//! above that is split into `2^SUB_BITS` equal-width sub-buckets. With
//! `SUB_BITS = 3` the worst-case relative width of a bucket is 1/8 = 12.5%,
//! which is the "one bucket's relative error" bound the property tests
//! assert against a sorted-Vec oracle.
//!
//! Bucket count: 8 exact buckets + 61 octaves (exponents 3..=63) x 8
//! sub-buckets = 496. At four bytes per bucket a histogram is ~2 KB and
//! covers the full `u64` range, so nanosecond timings never clip.

/// log2 of the number of sub-buckets per octave.
pub const SUB_BITS: u32 = 3;

/// Number of sub-buckets per octave (8).
const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Total number of buckets: 8 exact + (63 - 3 + 1) octaves x 8.
pub const BUCKET_COUNT: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// Maps a value to its bucket index. Total order on values maps to a
/// non-strict total order on indices (monotone), values below 8 are exact,
/// and `u64::MAX` maps to `BUCKET_COUNT - 1`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // >= SUB_BITS here
    let sub = ((value >> (exp - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    SUB_BUCKETS + (exp - SUB_BITS) as usize * SUB_BUCKETS + sub
}

/// Smallest value that lands in bucket `index`. Quantile estimates report
/// this lower edge, so they never overshoot the true order statistic.
#[inline]
pub fn bucket_lower_bound(index: usize) -> u64 {
    debug_assert!(index < BUCKET_COUNT);
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let exp = SUB_BITS + ((index - SUB_BUCKETS) / SUB_BUCKETS) as u32;
    let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + sub) << (exp - SUB_BITS)
}

/// Largest value that lands in bucket `index` (inclusive upper edge).
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    debug_assert!(index < BUCKET_COUNT);
    if index + 1 == BUCKET_COUNT {
        u64::MAX
    } else {
        bucket_lower_bound(index + 1) - 1
    }
}

/// Quantile summary reported for a histogram in a snapshot. All values are
/// bucket lower edges (consistent underestimates within 12.5%), except
/// `count`, which is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Exact number of recorded samples.
    pub count: u64,
    /// Bucket-floor of the largest recorded sample (0 when empty).
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th percentile estimate.
    pub p90: u64,
    /// 99th percentile estimate.
    pub p99: u64,
    /// 99.9th percentile estimate.
    pub p999: u64,
}

/// Computes the `q`-quantile (0 < q <= 1) from bucket counts: the lower
/// edge of the first bucket at which the cumulative count reaches
/// `ceil(q * total)`. Returns 0 for an empty histogram.
pub(crate) fn quantile_from_counts(counts: &[u64; BUCKET_COUNT], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (index, &c) in counts.iter().enumerate() {
        cumulative += c;
        if cumulative >= rank {
            return bucket_lower_bound(index);
        }
    }
    // Unreachable when `total` matches the counts, but stay total anyway.
    bucket_lower_bound(BUCKET_COUNT - 1)
}

/// Summarizes raw bucket counts into the fixed quantile set exported by
/// snapshots.
pub(crate) fn summarize_counts(counts: &[u64; BUCKET_COUNT]) -> HistogramSummary {
    let total: u64 = counts.iter().sum();
    let max = counts
        .iter()
        .rposition(|&c| c != 0)
        .map(bucket_lower_bound)
        .unwrap_or(0);
    HistogramSummary {
        count: total,
        max,
        p50: quantile_from_counts(counts, total, 0.50),
        p90: quantile_from_counts(counts, total, 0.90),
        p99: quantile_from_counts(counts, total, 0.99),
        p999: quantile_from_counts(counts, total, 0.999),
    }
}

/// A single-threaded log-linear histogram: plain `u32` buckets, no atomics.
///
/// This type is always functional, independent of the crate's `enabled`
/// feature — it is the per-thread shard used by parallel workers (e.g. the
/// bench suite's worker pool) to record contention-free and then flush once
/// into a shared `LatencyHistogram` via `merge_from`. When telemetry is
/// disabled the flush is a no-op but local recording still works, so code
/// that *reads back* its own local histogram keeps behaving.
#[derive(Clone)]
pub struct LocalHistogram {
    buckets: [u32; BUCKET_COUNT],
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// Creates an empty histogram (~2 KB, on the stack or in a struct).
    pub const fn new() -> Self {
        Self {
            buckets: [0; BUCKET_COUNT],
        }
    }

    /// Records one sample. Saturates per-bucket at `u32::MAX`.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let b = &mut self.buckets[bucket_index(value)];
        *b = b.saturating_add(1);
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &LocalHistogram) {
        for (dst, &src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst = dst.saturating_add(src);
        }
    }

    /// Exact number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|&c| c as u64).sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&c| c == 0)
    }

    /// Quantile estimate: lower edge of the bucket holding the
    /// `ceil(q * count)`-th smallest sample. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_counts(&self.widened(), self.count(), q)
    }

    /// Bucket-floor of the largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c != 0)
            .map(bucket_lower_bound)
            .unwrap_or(0)
    }

    /// Full quantile summary (same shape as a snapshot entry).
    pub fn summary(&self) -> HistogramSummary {
        summarize_counts(&self.widened())
    }

    pub(crate) fn bucket_counts(&self) -> &[u32; BUCKET_COUNT] {
        &self.buckets
    }

    fn widened(&self) -> [u64; BUCKET_COUNT] {
        let mut wide = [0u64; BUCKET_COUNT];
        for (dst, &src) in wide.iter_mut().zip(self.buckets.iter()) {
            *dst = src as u64;
        }
        wide
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_edges_are_continuous_and_monotone() {
        // Every bucket's lower bound must map back to that bucket, and the
        // value just below it must map to the previous bucket.
        for index in 1..BUCKET_COUNT {
            let lo = bucket_lower_bound(index);
            assert_eq!(bucket_index(lo), index, "lower edge of {index}");
            assert_eq!(bucket_index(lo - 1), index - 1, "below edge of {index}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(bucket_upper_bound(BUCKET_COUNT - 1), u64::MAX);
    }

    #[test]
    fn relative_width_is_at_most_one_eighth() {
        for index in 8..BUCKET_COUNT {
            let lo = bucket_lower_bound(index) as f64;
            let hi = bucket_upper_bound(index) as f64;
            assert!((hi - lo) / lo <= 0.125 + 1e-12, "bucket {index} too wide");
        }
    }

    #[test]
    fn empty_histogram_summarizes_to_zero() {
        let h = LocalHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn single_value_quantiles() {
        let mut h = LocalHistogram::new();
        h.record(1000);
        let s = h.summary();
        assert_eq!(s.count, 1);
        // 1000 lands in an 8-wide bucket starting at 960... compute exactly:
        let lo = bucket_lower_bound(bucket_index(1000));
        assert_eq!(s.p50, lo);
        assert_eq!(s.p999, lo);
        assert_eq!(s.max, lo);
        assert!(lo <= 1000 && 1000 <= bucket_upper_bound(bucket_index(1000)));
    }
}
