//! Multi-quantile snapshot panels — the paper's Table 8 ("one day in the
//! life of the datastar/normal queue").
//!
//! At a fixed cadence (the paper samples every two hours), the BMBP history
//! is queried for a *lower* bound on the 0.25 quantile and *upper* bounds on
//! the 0.5, 0.75 and 0.95 quantiles, all at 95% confidence — a compact
//! picture of what a user could expect from the queue at that moment.

use qdelay_predict::bmbp::{Bmbp, BmbpConfig};
use qdelay_predict::state::BmbpState;
use qdelay_predict::{BoundSpec, PredictError, QuantilePredictor};
use qdelay_trace::Trace;

/// One row of a Table 8-style panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantilePanel {
    /// Snapshot time (UNIX seconds).
    pub time: u64,
    /// 95%-confidence *lower* bound on the 0.25 quantile.
    pub lower_q25: Option<f64>,
    /// 95%-confidence upper bound on the 0.5 quantile.
    pub upper_q50: Option<f64>,
    /// 95%-confidence upper bound on the 0.75 quantile.
    pub upper_q75: Option<f64>,
    /// 95%-confidence upper bound on the 0.95 quantile.
    pub upper_q95: Option<f64>,
}

/// Configuration for panel generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotConfig {
    /// First snapshot (UNIX seconds).
    pub start: u64,
    /// Last snapshot (inclusive).
    pub end: u64,
    /// Cadence in seconds (paper: 7200 = two hours).
    pub step: u64,
    /// Confidence level for all four bounds (paper: 0.95).
    pub confidence: f64,
}

/// Checkpoint of an in-progress [`PanelReplay`]: the predictor's
/// serializable core plus the replay cursor. Everything else a replay holds
/// is rebuilt from the trace and config on [`PanelReplay::resume`].
#[derive(Debug, Clone, PartialEq)]
pub struct PanelReplayState {
    /// BMBP warm-restart state (see [`qdelay_predict::state`]).
    pub bmbp: BmbpState,
    /// Number of job starts already revealed to the history.
    pub starts_consumed: usize,
    /// Next snapshot time to emit (meaningless once `exhausted`).
    pub next_time: u64,
    /// Whether the replay has emitted its final panel.
    pub exhausted: bool,
}

/// Incremental Table-8 panel generator: replays a trace with a BMBP
/// predictor (paper configuration) and emits one [`QuantilePanel`] per
/// [`PanelReplay::next_panel`] call.
///
/// Jobs are revealed to the history exactly as in the main harness: a job's
/// wait becomes visible at its start time. The replay can be checkpointed
/// at any panel boundary with [`PanelReplay::state`] and continued later by
/// [`PanelReplay::resume`] — the continuation emits bit-identical panels to
/// an uninterrupted run, because the checkpoint carries the predictor's
/// full warm-restart state.
#[derive(Debug, Clone)]
pub struct PanelReplay {
    end: u64,
    step: u64,
    specs: [BoundSpec; 4],
    bmbp: Bmbp,
    /// Job `(start_time, wait)` pairs in start-time order (stable sort, so
    /// ties replay identically across runs).
    starts: Vec<(f64, f64)>,
    si: usize,
    next_time: u64,
    exhausted: bool,
}

fn panel_specs(confidence: f64) -> [BoundSpec; 4] {
    [0.25, 0.50, 0.75, 0.95]
        .map(|q| BoundSpec::new(q, confidence).expect("validated confidence"))
}

fn sorted_starts(trace: &Trace) -> Vec<(f64, f64)> {
    let mut starts: Vec<(f64, f64)> = trace
        .iter()
        .map(|j| (j.start_time(), j.wait_secs))
        .collect();
    starts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
    starts
}

impl PanelReplay {
    /// Starts a fresh replay at `config.start`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`, `step == 0`, or `confidence` is outside
    /// (0, 1).
    pub fn new(trace: &Trace, config: &SnapshotConfig) -> Self {
        assert!(config.start <= config.end, "start must be <= end");
        assert!(config.step > 0, "step must be positive");
        Self {
            end: config.end,
            step: config.step,
            specs: panel_specs(config.confidence),
            bmbp: Bmbp::new(BmbpConfig::default()),
            starts: sorted_starts(trace),
            si: 0,
            next_time: config.start,
            exhausted: false,
        }
    }

    /// Emits the next panel, or `None` once the window is exhausted.
    pub fn next_panel(&mut self) -> Option<QuantilePanel> {
        if self.exhausted {
            return None;
        }
        let t = self.next_time;
        while self.si < self.starts.len() && self.starts[self.si].0 <= t as f64 {
            self.bmbp.observe(self.starts[self.si].1);
            self.si += 1;
        }
        let [spec25, spec50, spec75, spec95] = self.specs;
        let panel = QuantilePanel {
            time: t,
            lower_q25: self.bmbp.lower_bound_for(spec25).value(),
            upper_q50: self.bmbp.upper_bound_for(spec50).value(),
            upper_q75: self.bmbp.upper_bound_for(spec75).value(),
            upper_q95: self.bmbp.upper_bound_for(spec95).value(),
        };
        match t.checked_add(self.step) {
            Some(next) if next <= self.end => self.next_time = next,
            _ => self.exhausted = true,
        }
        Some(panel)
    }

    /// Exports a checkpoint from which [`PanelReplay::resume`] can continue.
    pub fn state(&self) -> PanelReplayState {
        PanelReplayState {
            bmbp: self.bmbp.state(),
            starts_consumed: self.si,
            next_time: self.next_time,
            exhausted: self.exhausted,
        }
    }

    /// Continues a replay from a checkpoint taken against the same trace
    /// and config.
    ///
    /// # Errors
    ///
    /// Rejects checkpoints whose cursor does not fit the trace or whose
    /// predictor state is invalid.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid configs as [`PanelReplay::new`].
    pub fn resume(
        trace: &Trace,
        config: &SnapshotConfig,
        state: &PanelReplayState,
    ) -> Result<Self, PredictError> {
        let mut replay = Self::new(trace, config);
        if state.starts_consumed > replay.starts.len() {
            return Err(PredictError::new(format!(
                "checkpoint consumed {} starts but the trace has only {}",
                state.starts_consumed,
                replay.starts.len()
            )));
        }
        replay.bmbp = Bmbp::from_state(&state.bmbp)?;
        replay.si = state.starts_consumed;
        replay.next_time = state.next_time;
        replay.exhausted = state.exhausted;
        Ok(replay)
    }
}

/// Replays `trace` end to end and collects every panel (the one-shot
/// convenience over [`PanelReplay`]).
///
/// # Panics
///
/// Panics if `start > end`, `step == 0`, or `confidence` is outside (0, 1).
pub fn quantile_panels(trace: &Trace, config: &SnapshotConfig) -> Vec<QuantilePanel> {
    let mut replay = PanelReplay::new(trace, config);
    let mut panels = Vec::new();
    while let Some(p) = replay.next_panel() {
        panels.push(p);
    }
    panels
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdelay_trace::JobRecord;

    fn trace_with_waits(waits: &[f64]) -> Trace {
        let mut t = Trace::new("m", "q");
        for (i, &w) in waits.iter().enumerate() {
            t.push(JobRecord {
                submit: i as u64 * 100,
                wait_secs: w,
                procs: 1,
                run_secs: 10.0,
            });
        }
        t
    }

    #[test]
    fn panels_cover_requested_window() {
        let waits: Vec<f64> = (0..2000).map(|i| (i % 300) as f64).collect();
        let trace = trace_with_waits(&waits);
        let cfg = SnapshotConfig {
            start: 0,
            end: 86_400,
            step: 7_200,
            confidence: 0.95,
        };
        let panels = quantile_panels(&trace, &cfg);
        assert_eq!(panels.len(), 13); // 0..=86400 step 7200
        assert_eq!(panels[0].time, 0);
        assert_eq!(panels.last().unwrap().time, 86_400);
    }

    #[test]
    fn quantile_ordering_within_panel() {
        let waits: Vec<f64> = (0..5000)
            .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % 100_000) as f64)
            .collect();
        let trace = trace_with_waits(&waits);
        let cfg = SnapshotConfig {
            start: 400_000,
            end: 500_000,
            step: 7_200,
            confidence: 0.95,
        };
        let panels = quantile_panels(&trace, &cfg);
        for p in &panels {
            let (Some(lo), Some(q50), Some(q75), Some(q95)) =
                (p.lower_q25, p.upper_q50, p.upper_q75, p.upper_q95)
            else {
                panic!("panel at {} missing bounds", p.time);
            };
            assert!(lo <= q50 && q50 <= q75 && q75 <= q95, "ordering at {}", p.time);
        }
    }

    #[test]
    fn early_panels_have_no_bounds() {
        // Before any job starts, the history is empty.
        let trace = trace_with_waits(&[1.0; 100]);
        let cfg = SnapshotConfig {
            start: 0,
            end: 0,
            step: 100,
            confidence: 0.95,
        };
        let panels = quantile_panels(&trace, &cfg);
        assert_eq!(panels.len(), 1);
        assert_eq!(panels[0].upper_q95, None);
    }

    #[test]
    fn checkpointed_replay_matches_single_run() {
        // Pause/resume at every panel boundary: the continuation must emit
        // bit-identical panels to the uninterrupted run.
        let waits: Vec<f64> = (0..4000)
            .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % 50_000) as f64)
            .collect();
        let trace = trace_with_waits(&waits);
        let cfg = SnapshotConfig {
            start: 0,
            end: 300_000,
            step: 7_200,
            confidence: 0.95,
        };
        let whole = quantile_panels(&trace, &cfg);
        assert!(whole.len() > 10);

        for split in [1, 5, whole.len() - 1] {
            let mut first = PanelReplay::new(&trace, &cfg);
            let mut got: Vec<QuantilePanel> = Vec::new();
            for _ in 0..split {
                got.push(first.next_panel().unwrap());
            }
            let checkpoint = first.state();
            drop(first);
            let mut second =
                PanelReplay::resume(&trace, &cfg, &checkpoint).expect("valid checkpoint");
            while let Some(p) = second.next_panel() {
                got.push(p);
            }
            assert_eq!(got.len(), whole.len(), "split at {split}");
            for (a, b) in got.iter().zip(&whole) {
                assert_eq!(a.time, b.time);
                for (x, y) in [
                    (a.lower_q25, b.lower_q25),
                    (a.upper_q50, b.upper_q50),
                    (a.upper_q75, b.upper_q75),
                    (a.upper_q95, b.upper_q95),
                ] {
                    assert_eq!(
                        x.map(f64::to_bits),
                        y.map(f64::to_bits),
                        "panel at {} diverged after split {split}",
                        a.time
                    );
                }
            }
        }
    }

    #[test]
    fn exhausted_replay_stays_exhausted_across_resume() {
        let trace = trace_with_waits(&[1.0; 10]);
        let cfg = SnapshotConfig {
            start: 0,
            end: 100,
            step: 100,
            confidence: 0.95,
        };
        let mut r = PanelReplay::new(&trace, &cfg);
        while r.next_panel().is_some() {}
        let mut resumed = PanelReplay::resume(&trace, &cfg, &r.state()).unwrap();
        assert_eq!(resumed.next_panel(), None);
    }

    #[test]
    fn resume_rejects_cursor_beyond_trace() {
        let trace = trace_with_waits(&[1.0; 10]);
        let cfg = SnapshotConfig {
            start: 0,
            end: 1000,
            step: 100,
            confidence: 0.95,
        };
        let mut r = PanelReplay::new(&trace, &cfg);
        r.next_panel();
        let mut bad = r.state();
        bad.starts_consumed = 11;
        assert!(PanelReplay::resume(&trace, &cfg, &bad).is_err());
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_rejected() {
        let trace = trace_with_waits(&[1.0]);
        quantile_panels(
            &trace,
            &SnapshotConfig {
                start: 0,
                end: 10,
                step: 0,
                confidence: 0.95,
            },
        );
    }
}
