//! Multi-quantile snapshot panels — the paper's Table 8 ("one day in the
//! life of the datastar/normal queue").
//!
//! At a fixed cadence (the paper samples every two hours), the BMBP history
//! is queried for a *lower* bound on the 0.25 quantile and *upper* bounds on
//! the 0.5, 0.75 and 0.95 quantiles, all at 95% confidence — a compact
//! picture of what a user could expect from the queue at that moment.

use qdelay_predict::bmbp::{Bmbp, BmbpConfig};
use qdelay_predict::{BoundSpec, QuantilePredictor};
use qdelay_trace::Trace;

/// One row of a Table 8-style panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantilePanel {
    /// Snapshot time (UNIX seconds).
    pub time: u64,
    /// 95%-confidence *lower* bound on the 0.25 quantile.
    pub lower_q25: Option<f64>,
    /// 95%-confidence upper bound on the 0.5 quantile.
    pub upper_q50: Option<f64>,
    /// 95%-confidence upper bound on the 0.75 quantile.
    pub upper_q75: Option<f64>,
    /// 95%-confidence upper bound on the 0.95 quantile.
    pub upper_q95: Option<f64>,
}

/// Configuration for panel generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotConfig {
    /// First snapshot (UNIX seconds).
    pub start: u64,
    /// Last snapshot (inclusive).
    pub end: u64,
    /// Cadence in seconds (paper: 7200 = two hours).
    pub step: u64,
    /// Confidence level for all four bounds (paper: 0.95).
    pub confidence: f64,
}

/// Replays `trace` with a BMBP predictor (paper configuration) and emits a
/// quantile panel at each snapshot time.
///
/// Jobs are revealed to the history exactly as in the main harness: a job's
/// wait becomes visible at its start time. Outcome feedback uses the 0.95
/// upper bound, as in the main evaluation.
///
/// # Panics
///
/// Panics if `start > end`, `step == 0`, or `confidence` is outside (0, 1).
pub fn quantile_panels(trace: &Trace, config: &SnapshotConfig) -> Vec<QuantilePanel> {
    assert!(config.start <= config.end, "start must be <= end");
    assert!(config.step > 0, "step must be positive");
    let c = config.confidence;
    let spec25 = BoundSpec::new(0.25, c).expect("validated confidence");
    let spec50 = BoundSpec::new(0.50, c).expect("validated confidence");
    let spec75 = BoundSpec::new(0.75, c).expect("validated confidence");
    let spec95 = BoundSpec::new(0.95, c).expect("validated confidence");

    let mut bmbp = Bmbp::new(BmbpConfig::default());
    // Events: job starts reveal waits, in start-time order.
    let mut starts: Vec<(f64, f64)> = trace
        .iter()
        .map(|j| (j.start_time(), j.wait_secs))
        .collect();
    starts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));

    let mut panels = Vec::new();
    let mut si = 0usize;
    let mut t = config.start;
    while t <= config.end {
        while si < starts.len() && starts[si].0 <= t as f64 {
            bmbp.observe(starts[si].1);
            si += 1;
        }
        panels.push(QuantilePanel {
            time: t,
            lower_q25: bmbp.lower_bound_for(spec25).value(),
            upper_q50: bmbp.upper_bound_for(spec50).value(),
            upper_q75: bmbp.upper_bound_for(spec75).value(),
            upper_q95: bmbp.upper_bound_for(spec95).value(),
        });
        match t.checked_add(config.step) {
            Some(next) => t = next,
            None => break,
        }
    }
    panels
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdelay_trace::JobRecord;

    fn trace_with_waits(waits: &[f64]) -> Trace {
        let mut t = Trace::new("m", "q");
        for (i, &w) in waits.iter().enumerate() {
            t.push(JobRecord {
                submit: i as u64 * 100,
                wait_secs: w,
                procs: 1,
                run_secs: 10.0,
            });
        }
        t
    }

    #[test]
    fn panels_cover_requested_window() {
        let waits: Vec<f64> = (0..2000).map(|i| (i % 300) as f64).collect();
        let trace = trace_with_waits(&waits);
        let cfg = SnapshotConfig {
            start: 0,
            end: 86_400,
            step: 7_200,
            confidence: 0.95,
        };
        let panels = quantile_panels(&trace, &cfg);
        assert_eq!(panels.len(), 13); // 0..=86400 step 7200
        assert_eq!(panels[0].time, 0);
        assert_eq!(panels.last().unwrap().time, 86_400);
    }

    #[test]
    fn quantile_ordering_within_panel() {
        let waits: Vec<f64> = (0..5000)
            .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % 100_000) as f64)
            .collect();
        let trace = trace_with_waits(&waits);
        let cfg = SnapshotConfig {
            start: 400_000,
            end: 500_000,
            step: 7_200,
            confidence: 0.95,
        };
        let panels = quantile_panels(&trace, &cfg);
        for p in &panels {
            let (Some(lo), Some(q50), Some(q75), Some(q95)) =
                (p.lower_q25, p.upper_q50, p.upper_q75, p.upper_q95)
            else {
                panic!("panel at {} missing bounds", p.time);
            };
            assert!(lo <= q50 && q50 <= q75 && q75 <= q95, "ordering at {}", p.time);
        }
    }

    #[test]
    fn early_panels_have_no_bounds() {
        // Before any job starts, the history is empty.
        let trace = trace_with_waits(&[1.0; 100]);
        let cfg = SnapshotConfig {
            start: 0,
            end: 0,
            step: 100,
            confidence: 0.95,
        };
        let panels = quantile_panels(&trace, &cfg);
        assert_eq!(panels.len(), 1);
        assert_eq!(panels[0].upper_q95, None);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_rejected() {
        let trace = trace_with_waits(&[1.0]);
        quantile_panels(
            &trace,
            &SnapshotConfig {
                start: 0,
                end: 10,
                step: 0,
                confidence: 0.95,
            },
        );
    }
}
