//! The event-driven replay loop (paper §5.1).
//!
//! Three event kinds drive the simulation, exactly as in the paper:
//!
//! 1. **job start** — a pending job's wait expires; its wait time joins the
//!    predictor's history and, if the job carried a prediction, the
//!    success/failure is fed back for change-point detection;
//! 2. **job arrival** — the currently served prediction is recorded for the
//!    arriving job and the job joins the pending queue;
//! 3. **epoch** — every `epoch_secs` of virtual time the predictor refits
//!    and the served prediction is refreshed.
//!
//! With `epoch_secs = 0` the predictor refits before every arrival — the
//! paper's "likely unrealizable" per-job-update deployment, kept as an
//! ablation (§5.1 reports its effect is minimal).

use qdelay_predict::QuantilePredictor;
use qdelay_telemetry::{time_scope, Counter, LatencyHistogram, Span};
use qdelay_trace::Trace;

/// Per-refit latency, split by predictor so tail regressions in one method
/// can't hide behind another's volume. Resolved once per [`run`], sampled
/// one refit in [`REFIT_SAMPLE_MASK`]` + 1` (incremental refits are tens of
/// nanoseconds, so timing each one would dominate the replay itself).
static REFIT_NS_BMBP: LatencyHistogram = LatencyHistogram::new("sim.refit_ns.bmbp");
static REFIT_NS_LOGN_NOTRIM: LatencyHistogram =
    LatencyHistogram::new("sim.refit_ns.lognormal_notrim");
static REFIT_NS_LOGN_TRIM: LatencyHistogram = LatencyHistogram::new("sim.refit_ns.lognormal_trim");
static REFIT_NS_OTHER: LatencyHistogram = LatencyHistogram::new("sim.refit_ns.other");
/// Jobs replayed (training + result phases) across all harness runs.
static JOBS_REPLAYED: Counter = Counter::new("sim.jobs_replayed");
/// Result-phase arrivals that were actually served a bound.
static PREDICTIONS_SERVED: Counter = Counter::new("sim.predictions_served");
/// Epoch refits fired (excludes the per-arrival refits of `epoch_secs = 0`).
static EPOCHS: Counter = Counter::new("sim.epochs");
/// Wall-clock of whole replay runs (jobs/sec = jobs_replayed / replay_ns).
static REPLAY_NS: LatencyHistogram = LatencyHistogram::new("sim.replay_ns");

/// One refit in 64 is wall-clock timed; the rest pay one local add.
const REFIT_SAMPLE_MASK: u32 = 63;

/// Latency histogram for a predictor's refits, by its published name.
fn refit_histogram(name: &str) -> &'static LatencyHistogram {
    match name {
        "bmbp" => &REFIT_NS_BMBP,
        "lognormal-notrim" => &REFIT_NS_LOGN_NOTRIM,
        "lognormal-trim" => &REFIT_NS_LOGN_TRIM,
        _ => &REFIT_NS_OTHER,
    }
}

/// Harness configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarnessConfig {
    /// Seconds of virtual time between predictor refits (paper: 300).
    /// Zero means "refit before every arrival".
    pub epoch_secs: f64,
    /// Leading fraction of jobs used for training (paper: 0.10).
    pub training_fraction: f64,
    /// Optional bound-sampling window for time-series figures.
    pub sample: Option<SampleWindow>,
}

impl Default for HarnessConfig {
    /// The paper's settings: 300-second epochs, 10% training, no sampling.
    fn default() -> Self {
        Self {
            epoch_secs: 300.0,
            training_fraction: 0.10,
            sample: None,
        }
    }
}

/// A window of virtual time over which the served bound is sampled at a
/// fixed step (drives Figures 1 and 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleWindow {
    /// First sample time (UNIX seconds).
    pub start: u64,
    /// Last sample time (inclusive, UNIX seconds).
    pub end: u64,
    /// Sampling step, seconds.
    pub step: u64,
}

/// A sampled value of the served bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundSample {
    /// Virtual time of the sample (UNIX seconds).
    pub time: u64,
    /// The served upper bound at that time, if one was available.
    pub bound: Option<f64>,
}

/// The prediction made for one result-phase job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionRecord {
    /// Job submission time (UNIX seconds).
    pub submit: u64,
    /// The bound served at submission (`None` if the predictor had
    /// insufficient history).
    pub predicted: Option<f64>,
    /// The wait the job actually experienced, seconds.
    pub actual: f64,
    /// Processors the job requested (for §6.2 breakdowns).
    pub procs: u32,
}

impl PredictionRecord {
    /// Whether the prediction was correct (bound at or above the actual
    /// wait). `None` when no prediction was served.
    pub fn correct(&self) -> Option<bool> {
        self.predicted.map(|p| self.actual <= p)
    }
}

/// Output of one harness run.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessResult {
    /// Machine the trace came from.
    pub machine: String,
    /// Queue the trace came from.
    pub queue: String,
    /// Predictor identifier.
    pub predictor: String,
    /// Number of jobs consumed as training.
    pub training_jobs: usize,
    /// Per-job predictions for the result phase, in arrival order.
    pub records: Vec<PredictionRecord>,
    /// Bound samples, when a [`SampleWindow`] was configured.
    pub samples: Vec<BoundSample>,
}

impl HarnessResult {
    /// Correctness/accuracy metrics over all result-phase records.
    pub fn metrics(&self) -> crate::metrics::EvalMetrics {
        crate::metrics::EvalMetrics::from_records(&self.records)
    }
}

/// Internal sweep event. Starts sort before arrivals at equal times, so an
/// arriving job sees every wait that became visible at that instant; epoch
/// refits are interleaved inline between events rather than materialized.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// (start_time, job index) — job leaves the pending queue.
    Start(f64, usize),
    /// (submit_time, job index).
    Arrival(f64, usize),
}

impl Event {
    fn time(&self) -> f64 {
        match *self {
            Event::Start(t, _) | Event::Arrival(t, _) => t,
        }
    }

    fn priority(&self) -> u8 {
        match self {
            Event::Start(..) => 0,
            Event::Arrival(..) => 1,
        }
    }
}

/// Replays `trace` against `predictor` under the paper's §5.1 protocol.
///
/// The trace must be sorted by submission time (traces from this
/// workspace's parsers and generators always are).
///
/// # Panics
///
/// Panics if `config.training_fraction` is not in `[0, 1)` or the trace is
/// not sorted by submission time.
pub fn run(
    trace: &Trace,
    predictor: &mut dyn QuantilePredictor,
    config: &HarnessConfig,
) -> HarnessResult {
    assert!(
        (0.0..1.0).contains(&config.training_fraction),
        "training_fraction must be in [0,1)"
    );
    assert!(
        trace.jobs().windows(2).all(|w| w[0].submit <= w[1].submit),
        "trace must be sorted by submit time"
    );

    let jobs = trace.jobs();
    let n = jobs.len();
    let training_jobs = (n as f64 * config.training_fraction).ceil() as usize;
    let refit_ns = refit_histogram(predictor.name());
    time_scope!(&REPLAY_NS);
    JOBS_REPLAYED.add(n as u64);

    // Pre-build arrival and start events, then merge chronologically.
    let mut events: Vec<Event> = Vec::with_capacity(2 * n);
    for (i, j) in jobs.iter().enumerate() {
        events.push(Event::Arrival(j.submit as f64, i));
        events.push(Event::Start(j.start_time(), i));
    }
    events.sort_by(|a, b| {
        a.time()
            .partial_cmp(&b.time())
            .expect("finite event times")
            .then(a.priority().cmp(&b.priority()))
    });

    let mut records = Vec::with_capacity(n - training_jobs);
    let mut samples = Vec::new();
    // The prediction served to each job, by index (None = none served or
    // training job).
    let mut served: Vec<Option<f64>> = vec![None; n];
    let mut next_epoch = if config.epoch_secs > 0.0 {
        jobs.first().map(|j| j.submit as f64 + config.epoch_secs)
    } else {
        None
    };
    let mut next_sample = config.sample.map(|w| w.start);
    let mut arrivals_seen = 0usize;
    // Global-counter traffic is batched in locals and flushed once per run:
    // the event loop runs up to ~10 refits per job, and even one relaxed
    // `fetch_add` per event is measurable against a ~40 ns incremental refit.
    let mut refit_tick: u32 = 0;
    let mut epochs: u64 = 0;
    let mut predictions_served: u64 = 0;
    let mut trained = training_jobs == 0;
    if trained {
        predictor.finish_training();
    }

    for ev in events {
        let now = ev.time();
        // Fire any epochs due before this event.
        if let Some(epoch) = next_epoch {
            let mut epoch = epoch;
            while epoch <= now {
                {
                    let _refit_span =
                        Span::enter_sampled(refit_ns, &mut refit_tick, REFIT_SAMPLE_MASK);
                    predictor.refit();
                }
                epochs += 1;
                record_samples(&mut next_sample, &config.sample, epoch, predictor, &mut samples);
                epoch += config.epoch_secs;
            }
            next_epoch = Some(epoch);
        }
        match ev {
            Event::Start(_, idx) => {
                let actual = jobs[idx].wait_secs;
                predictor.observe(actual);
                if let Some(predicted) = served[idx] {
                    predictor.record_outcome(predicted, actual);
                }
            }
            Event::Arrival(_, idx) => {
                if config.epoch_secs == 0.0 {
                    let _refit_span =
                        Span::enter_sampled(refit_ns, &mut refit_tick, REFIT_SAMPLE_MASK);
                    predictor.refit();
                }
                arrivals_seen += 1;
                if !trained && arrivals_seen > training_jobs {
                    predictor.finish_training();
                    trained = true;
                }
                if trained {
                    let predicted = predictor.current_bound().value();
                    if predicted.is_some() {
                        predictions_served += 1;
                    }
                    served[idx] = predicted;
                    records.push(PredictionRecord {
                        submit: jobs[idx].submit,
                        predicted,
                        actual: jobs[idx].wait_secs,
                        procs: jobs[idx].procs,
                    });
                }
            }
        }
    }
    // Flush trailing samples after the last event.
    if let Some(w) = config.sample {
        while let Some(t) = next_sample {
            if t > w.end {
                break;
            }
            {
                let _refit_span =
                    Span::enter_sampled(refit_ns, &mut refit_tick, REFIT_SAMPLE_MASK);
                predictor.refit();
            }
            samples.push(BoundSample {
                time: t,
                bound: predictor.current_bound().value(),
            });
            next_sample = Some(t + w.step);
        }
    }
    EPOCHS.add(epochs);
    PREDICTIONS_SERVED.add(predictions_served);

    HarnessResult {
        machine: trace.machine().to_string(),
        queue: trace.queue().to_string(),
        predictor: predictor.name().to_string(),
        training_jobs,
        records,
        samples,
    }
}

fn record_samples(
    next_sample: &mut Option<u64>,
    window: &Option<SampleWindow>,
    epoch_time: f64,
    predictor: &dyn QuantilePredictor,
    samples: &mut Vec<BoundSample>,
) {
    let Some(w) = window else { return };
    while let Some(t) = *next_sample {
        if t > w.end || (t as f64) > epoch_time {
            break;
        }
        samples.push(BoundSample {
            time: t,
            bound: predictor.current_bound().value(),
        });
        *next_sample = Some(t + w.step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdelay_predict::baseline::MaxObservedPredictor;
    use qdelay_predict::bmbp::Bmbp;
    use qdelay_trace::{JobRecord, Trace};

    /// A trace with constant inter-arrival gap and fixed waits.
    fn uniform_trace(n: usize, gap: u64, wait: f64) -> Trace {
        let mut t = Trace::new("m", "q");
        for i in 0..n {
            t.push(JobRecord {
                submit: 1000 + i as u64 * gap,
                wait_secs: wait,
                procs: 1,
                run_secs: 100.0,
            });
        }
        t
    }

    #[test]
    fn training_jobs_not_recorded() {
        let trace = uniform_trace(100, 60, 5.0);
        let mut p = MaxObservedPredictor::new();
        let res = run(&trace, &mut p, &HarnessConfig::default());
        assert_eq!(res.training_jobs, 10);
        assert_eq!(res.records.len(), 90);
    }

    #[test]
    fn predictor_only_sees_started_jobs() {
        // Waits of 10 000 s with arrivals every 60 s: when job i arrives,
        // jobs arriving in the last 10 000 s are still pending, so the
        // max-observed predictor must lag behind.
        let mut trace = Trace::new("m", "q");
        for i in 0..50u64 {
            trace.push(JobRecord {
                submit: i * 60,
                wait_secs: 10_000.0 + i as f64, // strictly increasing waits
                procs: 1,
                run_secs: 1.0,
            });
        }
        let mut p = MaxObservedPredictor::new();
        let res = run(
            &trace,
            &mut p,
            &HarnessConfig {
                epoch_secs: 0.0, // refit continuously; isolation is the point
                training_fraction: 0.1,
                sample: None,
            },
        );
        // No job can ever see a wait >= its own (all pending): every
        // prediction must be below the actual wait.
        for r in &res.records {
            if let Some(pred) = r.predicted {
                assert!(
                    pred < r.actual,
                    "prediction {pred} should lag actual {}",
                    r.actual
                );
            }
        }
    }

    #[test]
    fn epoch_zero_refits_continuously() {
        let trace = uniform_trace(200, 3600, 7.0); // gaps far over waits
        let mut p = MaxObservedPredictor::new();
        let res = run(
            &trace,
            &mut p,
            &HarnessConfig {
                epoch_secs: 0.0,
                training_fraction: 0.1,
                sample: None,
            },
        );
        // All waits identical: every result-phase prediction is exact.
        assert!(res.records.iter().all(|r| r.predicted == Some(7.0)));
    }

    #[test]
    fn stale_predictions_between_epochs() {
        // One very long epoch: predictions never refresh after training.
        let trace = uniform_trace(100, 60, 3.0);
        let mut p = MaxObservedPredictor::new();
        let res = run(
            &trace,
            &mut p,
            &HarnessConfig {
                epoch_secs: 1e9,
                training_fraction: 0.1,
                sample: None,
            },
        );
        // finish_training refits once; after that the bound stays 3.0 anyway
        // (constant waits). Check it was served to everyone.
        assert!(res.records.iter().all(|r| r.predicted == Some(3.0)));
    }

    #[test]
    fn bmbp_end_to_end_on_stationary_trace() {
        // Scrambled-but-stationary waits: BMBP must hit >= 95% coverage.
        let mut trace = Trace::new("m", "q");
        for i in 0..3000u64 {
            let wait = (i.wrapping_mul(2_654_435_761) % 7200) as f64;
            trace.push(JobRecord {
                submit: i * 120,
                wait_secs: wait,
                procs: 1,
                run_secs: 60.0,
            });
        }
        let mut p = Bmbp::with_defaults();
        let res = run(&trace, &mut p, &HarnessConfig::default());
        let m = res.metrics();
        assert!(m.jobs > 2000);
        assert!(
            m.correct_fraction >= 0.95,
            "coverage {} below target",
            m.correct_fraction
        );
    }

    #[test]
    fn sampling_window_produces_series() {
        let trace = uniform_trace(500, 300, 42.0);
        let mut p = MaxObservedPredictor::new();
        let cfg = HarnessConfig {
            epoch_secs: 300.0,
            training_fraction: 0.1,
            sample: Some(SampleWindow {
                start: 1000,
                end: 1000 + 499 * 300,
                step: 3600,
            }),
        };
        let res = run(&trace, &mut p, &cfg);
        assert!(!res.samples.is_empty());
        // Samples are equally spaced and within the window.
        for w in res.samples.windows(2) {
            assert_eq!(w[1].time - w[0].time, 3600);
        }
        // Once history exists, samples carry the bound.
        assert!(res.samples.iter().rev().take(5).all(|s| s.bound == Some(42.0)));
    }

    #[test]
    #[should_panic(expected = "sorted by submit")]
    fn rejects_unsorted_trace() {
        let mut trace = Trace::new("m", "q");
        trace.push(JobRecord {
            submit: 100,
            wait_secs: 1.0,
            procs: 1,
            run_secs: 1.0,
        });
        trace.push(JobRecord {
            submit: 50,
            wait_secs: 1.0,
            procs: 1,
            run_secs: 1.0,
        });
        let mut p = MaxObservedPredictor::new();
        run(&trace, &mut p, &HarnessConfig::default());
    }

    #[test]
    fn empty_trace_yields_empty_result() {
        let trace = Trace::new("m", "q");
        let mut p = MaxObservedPredictor::new();
        let res = run(&trace, &mut p, &HarnessConfig::default());
        assert!(res.records.is_empty());
        assert_eq!(res.training_jobs, 0);
    }
}
