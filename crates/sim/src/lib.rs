//! # qdelay-sim
//!
//! The paper's trace-driven, event-driven evaluation simulator (§5.1).
//!
//! A trace of `(submit time, wait)` pairs is replayed against a
//! [`qdelay_predict::QuantilePredictor`] under the exact information
//! constraints a live deployment would face:
//!
//! * a job's wait time becomes visible to the predictor only when the job
//!   *starts* (leaves the pending queue), not when it arrives;
//! * the served prediction is refreshed only on a periodic epoch (default
//!   300 s, modeling the five-minute log "dump" the paper assumes), not on
//!   every event;
//! * an initial fraction of the trace (default 10%) is used for training:
//!   waits accumulate and the change-point detector is calibrated, but no
//!   successes/failures are recorded.
//!
//! The crate also provides the derived measurements the paper reports:
//! correctness fractions and median prediction ratios ([`metrics`]),
//! bound time series for Figures 1-2 (sampling in [`harness`]), and
//! multi-quantile snapshot panels for Table 8 ([`snapshots`]).

pub mod harness;
pub mod metrics;
pub mod snapshots;

pub use harness::{HarnessConfig, HarnessResult, PredictionRecord, SampleWindow};
pub use metrics::EvalMetrics;
