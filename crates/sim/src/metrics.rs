//! Correctness and accuracy metrics (paper §5.1, §6).
//!
//! * **Correctness**: the fraction of predictions at or above the actual
//!   wait. A method is *correct* on a queue when this fraction is at least
//!   the target quantile (0.95 for the paper's headline results).
//! * **Accuracy**: the median over jobs of `actual / predicted` — Table 4's
//!   "median ratio of actual wait times over predicted wait times". Values
//!   close to 1 mean tight bounds; tiny values mean very conservative
//!   bounds. (The paper's §5.1 prose inverts the ratio; we follow the
//!   table and also expose the inverse.) Ratios are computed on `+1`-shifted
//!   values so zero-second waits and zero-second bounds are well-defined.

use crate::harness::PredictionRecord;
use qdelay_trace::ProcRange;
use std::collections::BTreeMap;

/// Aggregated evaluation metrics for one (queue, predictor) run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalMetrics {
    /// Result-phase jobs that received a prediction.
    pub jobs: usize,
    /// Of those, how many predictions were correct (bound >= actual).
    pub correct: usize,
    /// `correct / jobs` (0 when no jobs).
    pub correct_fraction: f64,
    /// Median of `(actual + 1) / (predicted + 1)` — Table 4's accuracy
    /// measure. Lower = more conservative.
    pub median_ratio: f64,
    /// Median of `(predicted + 1) / (actual + 1)` — the §5.1 phrasing.
    pub median_inverse_ratio: f64,
    /// Result-phase jobs for which no prediction was available.
    pub unpredicted: usize,
}

impl EvalMetrics {
    /// Computes metrics from per-job records.
    pub fn from_records(records: &[PredictionRecord]) -> Self {
        let mut correct = 0usize;
        let mut ratios: Vec<f64> = Vec::with_capacity(records.len());
        let mut unpredicted = 0usize;
        for r in records {
            match r.predicted {
                Some(p) => {
                    if r.actual <= p {
                        correct += 1;
                    }
                    ratios.push((r.actual + 1.0) / (p + 1.0));
                }
                None => unpredicted += 1,
            }
        }
        let jobs = ratios.len();
        let median_ratio = qdelay_stats::describe::median(&ratios).unwrap_or(f64::NAN);
        let inverse: Vec<f64> = ratios.iter().map(|r| 1.0 / r).collect();
        let median_inverse_ratio = qdelay_stats::describe::median(&inverse).unwrap_or(f64::NAN);
        Self {
            jobs,
            correct,
            correct_fraction: if jobs > 0 {
                correct as f64 / jobs as f64
            } else {
                0.0
            },
            median_ratio,
            median_inverse_ratio,
            unpredicted,
        }
    }

    /// Whether the method is "correct" at the given target quantile
    /// (the paper's asterisk criterion, inverted).
    pub fn is_correct(&self, target_quantile: f64) -> bool {
        self.correct_fraction >= target_quantile
    }
}

/// Metrics broken down by processor range, dropping cells below the paper's
/// minimum job count (Tables 5-7 use 1000).
///
/// # Examples
///
/// ```
/// use qdelay_sim::metrics::bucket_by_proc_range;
/// use qdelay_sim::PredictionRecord;
///
/// let records: Vec<PredictionRecord> = (0..2500)
///     .map(|i| PredictionRecord {
///         submit: i,
///         predicted: Some(10.0),
///         actual: 5.0,
///         procs: if i % 2 == 0 { 2 } else { 32 },
///     })
///     .collect();
/// let cells = bucket_by_proc_range(&records, 1000);
/// assert_eq!(cells.len(), 2); // 1-4 and 17-64 both have >= 1000 jobs
/// ```
pub fn bucket_by_proc_range(
    records: &[PredictionRecord],
    min_jobs: usize,
) -> BTreeMap<ProcRange, EvalMetrics> {
    let mut buckets: BTreeMap<ProcRange, Vec<PredictionRecord>> = BTreeMap::new();
    for r in records {
        buckets
            .entry(ProcRange::for_procs(r.procs))
            .or_default()
            .push(*r);
    }
    buckets
        .into_iter()
        .filter(|(_, v)| v.len() >= min_jobs)
        .map(|(k, v)| (k, EvalMetrics::from_records(&v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(predicted: Option<f64>, actual: f64, procs: u32) -> PredictionRecord {
        PredictionRecord {
            submit: 0,
            predicted,
            actual,
            procs,
        }
    }

    #[test]
    fn correctness_counts_boundary_as_correct() {
        let records = vec![
            rec(Some(10.0), 10.0, 1), // exactly at the bound: correct
            rec(Some(10.0), 10.1, 1), // miss
            rec(Some(10.0), 0.0, 1),  // hit
        ];
        let m = EvalMetrics::from_records(&records);
        assert_eq!(m.jobs, 3);
        assert_eq!(m.correct, 2);
        assert!((m.correct_fraction - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unpredicted_jobs_excluded_from_fraction() {
        let records = vec![rec(None, 5.0, 1), rec(Some(10.0), 5.0, 1)];
        let m = EvalMetrics::from_records(&records);
        assert_eq!(m.jobs, 1);
        assert_eq!(m.unpredicted, 1);
        assert_eq!(m.correct_fraction, 1.0);
    }

    #[test]
    fn ratio_uses_plus_one_smoothing() {
        // actual 0, predicted 0: ratio 1 (not NaN).
        let m = EvalMetrics::from_records(&[rec(Some(0.0), 0.0, 1)]);
        assert_eq!(m.median_ratio, 1.0);
        // actual 0, predicted 999: ratio 1/1000.
        let m = EvalMetrics::from_records(&[rec(Some(999.0), 0.0, 1)]);
        assert!((m.median_ratio - 1e-3).abs() < 1e-15);
        assert!((m.median_inverse_ratio - 1e3).abs() < 1e-9);
    }

    #[test]
    fn empty_records() {
        let m = EvalMetrics::from_records(&[]);
        assert_eq!(m.jobs, 0);
        assert_eq!(m.correct_fraction, 0.0);
        assert!(m.median_ratio.is_nan());
    }

    #[test]
    fn is_correct_threshold() {
        let mut records: Vec<PredictionRecord> =
            (0..95).map(|_| rec(Some(10.0), 5.0, 1)).collect();
        records.extend((0..5).map(|_| rec(Some(10.0), 50.0, 1)));
        let m = EvalMetrics::from_records(&records);
        assert!(m.is_correct(0.95));
        records.push(rec(Some(10.0), 50.0, 1));
        let m = EvalMetrics::from_records(&records);
        assert!(!m.is_correct(0.95));
    }

    #[test]
    fn buckets_drop_thin_cells() {
        let mut records: Vec<PredictionRecord> =
            (0..1500).map(|_| rec(Some(10.0), 5.0, 2)).collect();
        records.extend((0..999).map(|_| rec(Some(10.0), 5.0, 128)));
        let cells = bucket_by_proc_range(&records, 1000);
        assert_eq!(cells.len(), 1);
        assert!(cells.contains_key(&ProcRange::R1To4));
        assert!(!cells.contains_key(&ProcRange::R65Plus));
    }

    #[test]
    fn buckets_partition_records() {
        let records: Vec<PredictionRecord> = (0..4000)
            .map(|i| rec(Some(10.0), 5.0, [1u32, 8, 32, 128][i % 4]))
            .collect();
        let cells = bucket_by_proc_range(&records, 1);
        let total: usize = cells.values().map(|m| m.jobs).sum();
        assert_eq!(total, 4000);
        assert_eq!(cells.len(), 4);
    }
}
