//! Primary-side fan-out from the journal commit path to replication
//! connections.
//!
//! The serve shard loop calls [`ReplHub::publish`] once per group commit,
//! *after* the journal's `write_all` succeeded, with the batch it just
//! committed. A replica connection calls [`ReplHub::subscribe`] *before*
//! scanning the journal directory, so every committed record reaches it
//! through at least one of the two paths (disk scan or live feed); the
//! per-partition seq dedup on apply makes the overlap harmless.
//!
//! Channels are bounded. A replica that cannot drain its feed (dead, or
//! pathologically slow) gets its subscription dropped rather than letting
//! it wedge the commit path — the connection notices the disconnect and
//! the replica reconnects with its cursors.

use crate::wire::{record_encoded_len, Cursor};
use qdelay_journal::Record;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};

/// One committed record plus the cursor a replica holds after applying it.
#[derive(Debug, Clone)]
pub struct TailEvent {
    pub cursor: Cursor,
    pub record: Record,
}

/// What [`ReplHub::subscribe`] hands a new replication connection.
pub struct Subscription {
    pub token: u64,
    /// Total records published before this subscription existed. The
    /// connection's lag is `published_records_now - base_records - forwarded`.
    pub base_records: u64,
    /// Same baseline in encoded record bytes.
    pub base_bytes: u64,
    pub rx: Receiver<Arc<Vec<TailEvent>>>,
}

struct Subscriber {
    token: u64,
    tx: SyncSender<Arc<Vec<TailEvent>>>,
}

/// Shared between the serve shards (publishers), the compactor, and the
/// replication listener's per-connection threads (subscribers).
pub struct ReplHub {
    subscribers: Mutex<Vec<Subscriber>>,
    next_token: AtomicU64,
    published_records: AtomicU64,
    published_bytes: AtomicU64,
    compaction: Mutex<()>,
    shutdown: AtomicBool,
}

impl Default for ReplHub {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplHub {
    pub fn new() -> ReplHub {
        ReplHub {
            subscribers: Mutex::new(Vec::new()),
            next_token: AtomicU64::new(1),
            published_records: AtomicU64::new(0),
            published_bytes: AtomicU64::new(0),
            compaction: Mutex::new(()),
            shutdown: AtomicBool::new(false),
        }
    }

    /// True if any replication connection is currently subscribed. The
    /// shard loop checks this *at publish time* (post-commit); checking
    /// earlier would race with a connection subscribing mid-batch.
    pub fn has_subscribers(&self) -> bool {
        !self.subscribers.lock().expect("repl hub poisoned").is_empty()
    }

    /// Registers a feed. Call this before scanning the journal directory:
    /// a record committed after this call is guaranteed to arrive on `rx`
    /// (or the subscription is dropped and the connection dies, which the
    /// replica handles by reconnecting).
    pub fn subscribe(&self) -> Subscription {
        let (tx, rx) = sync_channel(1024);
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let mut subs = self.subscribers.lock().expect("repl hub poisoned");
        // Read the baselines under the subscriber lock so no publish can
        // slip between "snapshot counters" and "visible in the list".
        let base_records = self.published_records.load(Ordering::Acquire);
        let base_bytes = self.published_bytes.load(Ordering::Acquire);
        subs.push(Subscriber { token, tx });
        Subscription { token, base_records, base_bytes, rx }
    }

    pub fn unsubscribe(&self, token: u64) {
        self.subscribers.lock().expect("repl hub poisoned").retain(|s| s.token != token);
    }

    /// Fans one committed batch out to every live feed. Called by the
    /// shard loop after the journal commit; a full or disconnected feed is
    /// dropped on the spot (never blocks the commit path).
    pub fn publish(&self, batch: Arc<Vec<TailEvent>>) {
        if batch.is_empty() {
            return;
        }
        let bytes: u64 = batch.iter().map(|e| record_encoded_len(&e.record)).sum();
        let mut subs = self.subscribers.lock().expect("repl hub poisoned");
        self.published_records.fetch_add(batch.len() as u64, Ordering::AcqRel);
        self.published_bytes.fetch_add(bytes, Ordering::AcqRel);
        subs.retain(|s| match s.tx.try_send(Arc::clone(&batch)) {
            Ok(()) => true,
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => false,
        });
    }

    /// Total records ever published (committed while the hub existed).
    pub fn published_records(&self) -> u64 {
        self.published_records.load(Ordering::Acquire)
    }

    /// Same total in encoded record bytes.
    pub fn published_bytes(&self) -> u64 {
        self.published_bytes.load(Ordering::Acquire)
    }

    /// Holds off snapshot compaction for as long as the guard lives. A
    /// replica connection takes this across its entire catch-up (snapshot
    /// read + segment streaming) so the snapshot ⊕ segments set cannot
    /// lose records mid-scan; the compactor wraps each pass in the same
    /// lock.
    pub fn pause_compaction(&self) -> MutexGuard<'_, ()> {
        self.compaction.lock().expect("repl hub poisoned")
    }

    /// Flags shutdown; connection threads poll this between sends.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(seq: u64) -> TailEvent {
        TailEvent {
            cursor: Cursor { epoch: 1, shard: 0, counter: 0, offset: 24 + seq * 40 },
            record: Record {
                site: "s".into(),
                queue: "q".into(),
                range: "5-16".into(),
                seq,
                wait: seq as f64,
                predicted_bmbp: None,
                predicted_lognormal: None,
                tombstone: false,
            },
        }
    }

    #[test]
    fn subscribe_baseline_excludes_prior_publishes() {
        let hub = ReplHub::new();
        assert!(!hub.has_subscribers());
        hub.publish(Arc::new(vec![event(1), event(2)]));
        assert_eq!(hub.published_records(), 2);
        let sub = hub.subscribe();
        assert_eq!(sub.base_records, 2);
        assert!(sub.base_bytes > 0);
        assert!(hub.has_subscribers());
        hub.publish(Arc::new(vec![event(3)]));
        let got = sub.rx.try_recv().expect("post-subscribe batch delivered");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].record.seq, 3);
        assert!(sub.rx.try_recv().is_err(), "pre-subscribe batch must not arrive");
        hub.unsubscribe(sub.token);
        assert!(!hub.has_subscribers());
    }

    #[test]
    fn full_feed_is_dropped_not_blocked() {
        let hub = ReplHub::new();
        let sub = hub.subscribe();
        for i in 0..1025 {
            hub.publish(Arc::new(vec![event(i)]));
        }
        // The 1025th publish found the channel full and evicted the feed.
        assert!(!hub.has_subscribers());
        let mut drained = 0;
        while sub.rx.try_recv().is_ok() {
            drained += 1;
        }
        assert_eq!(drained, 1024);
        // Counters still count everything published.
        assert_eq!(hub.published_records(), 1025);
    }

    #[test]
    fn empty_batches_are_ignored() {
        let hub = ReplHub::new();
        let sub = hub.subscribe();
        hub.publish(Arc::new(Vec::new()));
        assert_eq!(hub.published_records(), 0);
        assert!(sub.rx.try_recv().is_err());
    }
}
