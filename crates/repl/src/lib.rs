//! # qdelay-repl
//!
//! WAL log-shipping replication: the journal's per-shard segment streams
//! (append-only, CRC-framed, per-partition seq-gapless — see
//! `qdelay-journal`) *are* a replication log, so a warm standby is "ship
//! the segments, replay them through the recovery path". This crate owns
//! the transport and the primary-side fan-out; `qdelay-serve` owns the
//! semantics (what a snapshot means, how records apply to shards).
//!
//! ## Protocol
//!
//! Every message is one journal [`frame`](qdelay_journal::frame)
//! (`u32 len | u32 crc | payload`) whose payload starts with a one-byte
//! message type:
//!
//! ```text
//! replica → primary
//!   HELLO      u32 proto_version | u32 n | n × cursor
//! primary → replica
//!   WELCOME    u32 proto_version | u8 resume      (0 = snapshot follows)
//!   SNAPSHOT   opaque snapshot bytes              (empty = empty state)
//!   RECORD     cursor | record bytes              (qdelay_journal::Record)
//!   CAUGHT_UP  (empty)
//!
//! cursor = u64 epoch | u32 shard | u64 counter | u64 end_offset
//! ```
//!
//! A [`Cursor`] names a byte position in one `(epoch, shard)` segment
//! stream: the offset just past the frame of the last record applied.
//! The handshake carries the replica's cursors; the primary resumes
//! mid-segment when every on-disk stream is still contiguously covered,
//! and falls back to snapshot-plus-full-stream otherwise. After catch-up
//! the connection switches to tail mode: freshly committed records are
//! pushed as they land (the publish happens *after* the journal commit's
//! `write_all`, and a replica subscribes to the live feed *before*
//! scanning the disk, so every record reaches it via at least one of the
//! two paths; per-partition seq dedup on apply makes the overlap
//! harmless).
//!
//! ## Safety properties
//!
//! * Damage anywhere in the stream is a typed [`ReplError::Corrupt`] —
//!   never a panic, and never an invented record (every record the
//!   decoder yields passed the frame CRC and the record validator).
//! * The primary pauses snapshot compaction while a replica catches up
//!   ([`ReplHub::pause_compaction`]), so the snapshot ⊕ segments set it
//!   streams from cannot lose records mid-scan.

mod hub;
mod primary;
mod replica;
pub mod wire;

pub use hub::{ReplHub, Subscription, TailEvent};
pub use primary::{PrimaryConfig, ReplListener};
pub use replica::ReplClient;
pub use wire::{Cursor, Msg, ReplError, PROTO_VERSION, REPL_MAX_PAYLOAD};

use qdelay_telemetry::{Counter, Gauge, LatencyHistogram};

/// Records the primary has committed but not yet pushed to the slowest
/// tailing replica (0 with no replicas attached).
pub static LAG_RECORDS: Gauge = Gauge::new("repl.lag_records");
/// Same lag in encoded record bytes.
pub static LAG_BYTES: Gauge = Gauge::new("repl.lag_bytes");
/// Records a replica applied to its shards (counted on the replica).
pub static APPLIED: Counter = Counter::new("repl.applied");
/// Records the primary shipped over replication connections (catch-up and
/// tail combined, all replicas).
pub static SHIPPED: Counter = Counter::new("repl.shipped_records");
/// Full resyncs served (snapshot + full segment stream instead of a
/// cursor resume).
pub static RESYNCS: Counter = Counter::new("repl.full_resyncs");
/// Replication connections currently attached to the primary.
pub static CONNECTED: Gauge = Gauge::new("repl.connected_replicas");
/// Replica-side catch-up latency: connect to CAUGHT_UP, in ms.
pub static CATCHUP_MS: LatencyHistogram = LatencyHistogram::new("repl.catchup_ms");
