//! Replica-side stream client: connect, send HELLO, then pull decoded
//! messages one at a time.
//!
//! This is deliberately transport-only — applying snapshots and records
//! to shards is `qdelay-serve`'s job. The client owns a read buffer and
//! yields [`Msg`]s; any damage (bad frame CRC, undecodable message) is a
//! typed [`ReplError::Corrupt`], after which the caller must drop the
//! connection and resync.

use crate::wire::{self, Msg, ReplError, REPL_MAX_PAYLOAD};
use qdelay_journal::frame::{self, Check};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected replication stream, past the HELLO.
pub struct ReplClient {
    stream: TcpStream,
    rbuf: Vec<u8>,
    /// Bytes of `rbuf` already consumed by decoded frames.
    consumed: usize,
}

impl ReplClient {
    /// Connects, sends HELLO with `cursors`, and arms a read timeout so
    /// [`ReplClient::next_msg`] returns a timeout-kinded [`ReplError::Io`]
    /// (see [`ReplError::is_timeout`]) instead of blocking forever — the
    /// apply loop uses that tick to poll for promotion requests.
    pub fn connect(
        addr: impl ToSocketAddrs,
        cursors: &[wire::Cursor],
        read_timeout: Duration,
    ) -> Result<ReplClient, ReplError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        let mut hello = Vec::new();
        wire::encode_hello(cursors, &mut hello);
        (&stream).write_all(&hello)?;
        Ok(ReplClient { stream, rbuf: Vec::new(), consumed: 0 })
    }

    /// Returns a message already sitting whole in the buffer, without
    /// touching the socket.
    pub fn try_buffered_msg(&mut self) -> Result<Option<Msg>, ReplError> {
        if self.consumed > 0 && self.consumed == self.rbuf.len() {
            self.rbuf.clear();
            self.consumed = 0;
        }
        match frame::check(&self.rbuf[self.consumed..], REPL_MAX_PAYLOAD) {
            Check::Complete { start, end, next } => {
                let at = self.consumed;
                let msg = wire::decode_msg(&self.rbuf[at + start..at + end])?;
                self.consumed += next;
                Ok(Some(msg))
            }
            Check::Incomplete => Ok(None),
            Check::Damaged(reason) => Err(ReplError::corrupt(format!("bad frame: {reason}"))),
        }
    }

    /// Blocks (up to the read timeout) for the next message.
    pub fn next_msg(&mut self) -> Result<Msg, ReplError> {
        loop {
            if let Some(msg) = self.try_buffered_msg()? {
                return Ok(msg);
            }
            // Drop consumed prefix before growing the buffer.
            if self.consumed > 0 {
                self.rbuf.drain(..self.consumed);
                self.consumed = 0;
            }
            let mut chunk = [0u8; 64 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ReplError::Eof);
            }
            self.rbuf.extend_from_slice(&chunk[..n]);
        }
    }
}
