//! Primary-side replication listener: accepts replica connections, serves
//! catch-up (snapshot ⊕ segment suffix, or a cursor resume), then tails
//! the live commit feed.
//!
//! Per-connection flow:
//!
//! 1. Read HELLO (5 s deadline) carrying the replica's cursors.
//! 2. Take the compaction pause lock, subscribe to the live feed, *then*
//!    scan the journal directory — in that order, so no committed record
//!    can fall between the disk scan and the feed.
//! 3. Decide resume vs full resync (see [`resume_plan`]), send WELCOME,
//!    then the snapshot (resync only) and the planned segment byte ranges
//!    as RECORD messages, then CAUGHT_UP. Drop the pause lock.
//! 4. Tail: forward feed batches as they land, refreshing the lag gauges
//!    each tick; exit on peer disconnect or hub shutdown.
//!
//! Records may reach the replica twice (disk scan overlapping the feed);
//! the replica's per-partition seq dedup makes that harmless. Records can
//! never reach it zero times.

use crate::hub::{ReplHub, Subscription};
use crate::wire::{self, Cursor, Msg, ReplError, REPL_MAX_PAYLOAD};
use crate::{CONNECTED, LAG_BYTES, LAG_RECORDS, RESYNCS, SHIPPED};
use qdelay_journal::frame::{self, Check};
use qdelay_journal::{read_segment_from, scan_dir, SegmentId, HEADER_LEN};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Where the primary's durable state lives.
#[derive(Debug, Clone)]
pub struct PrimaryConfig {
    /// Journal directory (segment files).
    pub dir: PathBuf,
    /// Snapshot file streamed verbatim on a full resync. A missing file
    /// is streamed as empty bytes ("start from empty state").
    pub snapshot_path: PathBuf,
}

/// How long a replica gets to send its HELLO.
const HELLO_TIMEOUT: Duration = Duration::from_secs(5);
/// Tail-loop tick: lag refresh + shutdown/peer-death poll cadence.
const TAIL_TICK: Duration = Duration::from_millis(200);
/// Flush threshold while streaming catch-up records.
const CATCHUP_CHUNK: usize = 256 * 1024;

static ATTACHED: AtomicU64 = AtomicU64::new(0);

struct AttachGuard;

impl AttachGuard {
    fn new() -> AttachGuard {
        CONNECTED.set(ATTACHED.fetch_add(1, Ordering::AcqRel) + 1);
        AttachGuard
    }
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        CONNECTED.set(ATTACHED.fetch_sub(1, Ordering::AcqRel) - 1);
    }
}

/// The accept loop handle. Connection threads are detached; they exit
/// within one tail tick of [`ReplHub::request_shutdown`].
pub struct ReplListener {
    addr: SocketAddr,
    hub: Arc<ReplHub>,
    accept: Option<JoinHandle<()>>,
}

impl ReplListener {
    /// Binds `bind_addr` and starts accepting replicas.
    pub fn spawn(
        cfg: PrimaryConfig,
        hub: Arc<ReplHub>,
        bind_addr: &str,
    ) -> std::io::Result<ReplListener> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let accept_hub = Arc::clone(&hub);
        let accept = std::thread::Builder::new()
            .name("repl-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_hub.is_shutdown() {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let cfg = cfg.clone();
                    let hub = Arc::clone(&accept_hub);
                    let _ = std::thread::Builder::new().name("repl-conn".into()).spawn(
                        move || {
                            let _attached = AttachGuard::new();
                            // Peer disconnects and shutdown are normal;
                            // only log-worthy failures are corrupt HELLOs,
                            // and this crate has no logger — the replica
                            // side reports its own errors.
                            let _ = serve_replica(stream, &cfg, &hub);
                        },
                    );
                }
            })?;
        Ok(ReplListener { addr, hub, accept: Some(accept) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and unblocks the accept thread. Existing
    /// connection threads notice shutdown within one tail tick.
    pub fn stop(mut self) {
        self.hub.request_shutdown();
        // Unblock `incoming()`.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Reads exactly one framed message from the stream.
fn read_one_msg(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Result<Msg, ReplError> {
    loop {
        match frame::check(buf, REPL_MAX_PAYLOAD) {
            Check::Complete { start, end, .. } => return wire::decode_msg(&buf[start..end]),
            Check::Incomplete => {}
            Check::Damaged(reason) => {
                return Err(ReplError::corrupt(format!("bad frame: {reason}")))
            }
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReplError::Eof);
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// One segment byte range to stream during catch-up.
struct StreamPlan {
    id: SegmentId,
    path: PathBuf,
    start: u64,
    /// Newest segment of its stream: a torn tail here is a commit still
    /// in flight (it will arrive via the feed), not damage.
    tolerant: bool,
}

/// Decides whether the replica's cursors let the primary skip the
/// snapshot. Resume requires: at least one cursor, and for *every*
/// on-disk `(epoch, shard)` stream a cursor pointing inside that stream
/// (counter within the on-disk range, offsets `HEADER_LEN ..= file len`)
/// with every later counter still present. Anything else — unknown
/// streams, compacted-away positions, bogus offsets — falls back to a
/// full resync, which is always correct.
fn resume_plan(
    cursors: &[Cursor],
    segments: &[(SegmentId, PathBuf)],
) -> Result<Option<Vec<StreamPlan>>, ReplError> {
    if cursors.is_empty() {
        return Ok(None);
    }
    let by_stream: HashMap<(u64, u32), Cursor> =
        cursors.iter().map(|&c| ((c.epoch, c.shard), c)).collect();
    let mut streams: HashMap<(u64, u32), Vec<(SegmentId, PathBuf)>> = HashMap::new();
    for (id, path) in segments {
        streams.entry((id.epoch, id.shard)).or_default().push((*id, path.clone()));
    }
    let mut plan = Vec::new();
    for ((epoch, shard), mut segs) in streams {
        segs.sort_by_key(|(id, _)| id.counter);
        let Some(&cursor) = by_stream.get(&(epoch, shard)) else { return Ok(None) };
        let min = segs.first().expect("non-empty stream").0.counter;
        let max = segs.last().expect("non-empty stream").0.counter;
        if cursor.counter < min || cursor.counter > max {
            return Ok(None);
        }
        // The suffix cursor.counter..=max must be contiguous on disk.
        let suffix: Vec<&(SegmentId, PathBuf)> =
            segs.iter().filter(|(id, _)| id.counter >= cursor.counter).collect();
        if suffix.len() as u64 != max - cursor.counter + 1 {
            return Ok(None);
        }
        for (i, seg) in suffix.iter().enumerate() {
            let (id, path) = (seg.0, &seg.1);
            let start = if id.counter == cursor.counter { cursor.offset } else { HEADER_LEN as u64 };
            if start < HEADER_LEN as u64 {
                return Ok(None);
            }
            let len = std::fs::metadata(path).map_err(ReplError::Io)?.len();
            if start > len {
                return Ok(None);
            }
            plan.push(StreamPlan {
                id,
                path: path.clone(),
                start,
                tolerant: i == suffix.len() - 1,
            });
        }
    }
    Ok(Some(plan))
}

/// Streams the planned byte ranges as RECORD messages.
fn stream_segments(
    stream: &mut TcpStream,
    plan: &[StreamPlan],
    out: &mut Vec<u8>,
) -> Result<u64, ReplError> {
    let mut shipped = 0u64;
    for p in plan {
        let frames = read_segment_from(&p.path, p.id, p.start, p.tolerant)
            .map_err(|e| ReplError::corrupt(format!("primary journal unreadable: {e}")))?;
        for f in &frames.records {
            let cursor = Cursor {
                epoch: p.id.epoch,
                shard: p.id.shard,
                counter: p.id.counter,
                offset: f.end_offset,
            };
            wire::encode_record(cursor, &f.record, out);
            shipped += 1;
            if out.len() >= CATCHUP_CHUNK {
                stream.write_all(out)?;
                out.clear();
            }
        }
    }
    Ok(shipped)
}

/// True when the peer has closed its end (tail mode: the replica never
/// writes after HELLO, so a readable EOF is the only death signal).
fn peer_gone(stream: &TcpStream) -> bool {
    let mut b = [0u8; 1];
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let gone = matches!(stream.peek(&mut b), Ok(0));
    let _ = stream.set_nonblocking(false);
    gone
}

fn serve_replica(
    mut stream: TcpStream,
    cfg: &PrimaryConfig,
    hub: &ReplHub,
) -> Result<(), ReplError> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(HELLO_TIMEOUT))?;
    let mut rbuf = Vec::new();
    let cursors = match read_one_msg(&mut stream, &mut rbuf)? {
        Msg::Hello { cursors, .. } => cursors,
        other => {
            return Err(ReplError::corrupt(format!("expected HELLO, got {other:?}")));
        }
    };

    let mut out = Vec::with_capacity(CATCHUP_CHUNK * 2);
    let sub: Subscription;
    {
        // Catch-up: no compaction may delete segments between the scan
        // and the stream, and the feed subscription must exist before the
        // scan so post-scan commits are not lost.
        let _pause = hub.pause_compaction();
        sub = hub.subscribe();
        let segments = scan_dir(&cfg.dir)
            .map_err(|e| ReplError::corrupt(format!("primary journal unreadable: {e}")))?;
        let plan = match resume_plan(&cursors, &segments)? {
            Some(plan) => {
                wire::encode_welcome(true, &mut out);
                plan
            }
            None => {
                RESYNCS.incr();
                wire::encode_welcome(false, &mut out);
                let snap = match std::fs::read(&cfg.snapshot_path) {
                    Ok(bytes) => bytes,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                    Err(e) => return Err(ReplError::Io(e)),
                };
                wire::encode_snapshot(&snap, &mut out);
                let mut all: Vec<(SegmentId, PathBuf)> = segments;
                all.sort_by_key(|(id, _)| *id);
                all.iter()
                    .map(|(id, path)| {
                        let last_of_stream = !all.iter().any(|(o, _)| {
                            (o.epoch, o.shard) == (id.epoch, id.shard) && o.counter > id.counter
                        });
                        StreamPlan {
                            id: *id,
                            path: path.clone(),
                            start: HEADER_LEN as u64,
                            tolerant: last_of_stream,
                        }
                    })
                    .collect()
            }
        };
        let shipped = stream_segments(&mut stream, &plan, &mut out)?;
        wire::encode_caught_up(&mut out);
        stream.write_all(&out)?;
        out.clear();
        SHIPPED.add(shipped);
        // Pause lock drops here: catch-up is on the wire, compaction may
        // resume.
    }

    // Tail mode.
    let mut forwarded_records = 0u64;
    let mut forwarded_bytes = 0u64;
    loop {
        if hub.is_shutdown() {
            hub.unsubscribe(sub.token);
            return Ok(());
        }
        match sub.rx.recv_timeout(TAIL_TICK) {
            Ok(batch) => {
                // Coalesce everything already queued into one write: under
                // sustained commit load this turns a syscall per group
                // commit into a syscall per drain cycle, which is most of
                // the shipping cost on a loaded box.
                let mut shipped = 0u64;
                let encode = |batch: &[crate::hub::TailEvent],
                              out: &mut Vec<u8>,
                              bytes: &mut u64| {
                    for ev in batch {
                        wire::encode_record(ev.cursor, &ev.record, out);
                        *bytes += wire::record_encoded_len(&ev.record);
                    }
                };
                encode(&batch, &mut out, &mut forwarded_bytes);
                shipped += batch.len() as u64;
                while out.len() < CATCHUP_CHUNK {
                    match sub.rx.try_recv() {
                        Ok(more) => {
                            encode(&more, &mut out, &mut forwarded_bytes);
                            shipped += more.len() as u64;
                        }
                        Err(_) => break,
                    }
                }
                forwarded_records += shipped;
                SHIPPED.add(shipped);
                if let Err(e) = stream.write_all(&out) {
                    hub.unsubscribe(sub.token);
                    return Err(ReplError::Io(e));
                }
                out.clear();
            }
            Err(RecvTimeoutError::Timeout) => {
                if peer_gone(&stream) {
                    hub.unsubscribe(sub.token);
                    return Err(ReplError::Eof);
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Evicted for slowness (hub dropped our sender); the
                // replica will notice the close and reconnect.
                hub.unsubscribe(sub.token);
                return Err(ReplError::corrupt("feed evicted (replica too slow)"));
            }
        }
        let published = hub.published_records();
        LAG_RECORDS.set(published.saturating_sub(sub.base_records + forwarded_records));
        LAG_BYTES.set(
            hub.published_bytes().saturating_sub(sub.base_bytes + forwarded_bytes),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdelay_journal::{encode_frame, encode_header, Record};

    fn write_segment(dir: &std::path::Path, id: SegmentId, seqs: &[u64]) -> (PathBuf, Vec<u64>) {
        let mut bytes = encode_header(id.epoch, id.shard).to_vec();
        let mut ends = Vec::new();
        for &seq in seqs {
            let rec = Record {
                site: "s".into(),
                queue: "q".into(),
                range: "5-16".into(),
                seq,
                wait: seq as f64,
                predicted_bmbp: None,
                predicted_lognormal: None,
                tombstone: false,
            };
            encode_frame(&rec, &mut bytes);
            ends.push(bytes.len() as u64);
        }
        let path = dir.join(id.file_name());
        std::fs::write(&path, bytes).unwrap();
        (path, ends)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qdelay-repl-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn resume_plan_accepts_only_contiguously_covered_streams() {
        let dir = tmp_dir("plan");
        let id0 = SegmentId { epoch: 1, shard: 0, counter: 0 };
        let id1 = SegmentId { epoch: 1, shard: 0, counter: 1 };
        let (_p0, ends0) = write_segment(&dir, id0, &[1, 2]);
        write_segment(&dir, id1, &[3]);
        let segments = scan_dir(&dir).unwrap();

        // No cursors → resync.
        assert!(resume_plan(&[], &segments).unwrap().is_none());
        // Cursor mid-segment 0 → stream rest of 0 plus all of 1.
        let c = Cursor { epoch: 1, shard: 0, counter: 0, offset: ends0[0] };
        let plan = resume_plan(&[c], &segments).unwrap().expect("resumable");
        assert_eq!(plan.len(), 2);
        let seg0 = plan.iter().find(|p| p.id == id0).unwrap();
        assert_eq!(seg0.start, ends0[0]);
        assert!(!seg0.tolerant);
        let seg1 = plan.iter().find(|p| p.id == id1).unwrap();
        assert_eq!(seg1.start, HEADER_LEN as u64);
        assert!(seg1.tolerant);
        // Cursor below the on-disk range (segment compacted away) → resync.
        let stale = Cursor { epoch: 1, shard: 0, counter: 5, offset: 24 };
        assert!(resume_plan(&[stale], &segments).unwrap().is_none());
        // Offset beyond the file → resync.
        let bogus = Cursor { epoch: 1, shard: 0, counter: 0, offset: 1 << 40 };
        assert!(resume_plan(&[bogus], &segments).unwrap().is_none());
        // A second on-disk stream with no cursor → resync.
        let id_other = SegmentId { epoch: 1, shard: 1, counter: 0 };
        write_segment(&dir, id_other, &[1]);
        let segments = scan_dir(&dir).unwrap();
        assert!(resume_plan(&[c], &segments).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
