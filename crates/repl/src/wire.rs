//! Replication message codec over the journal frame format.
//!
//! See the crate docs for the message grammar. Everything here is pure
//! bytes-in/bytes-out; socket handling lives in [`crate::primary`] and
//! [`crate::replica`].

use qdelay_journal::{frame, Record};
use std::io;

/// Protocol version spoken by this build. A mismatch on either side of
/// the handshake is [`ReplError::Corrupt`], never a silent misread.
pub const PROTO_VERSION: u32 = 1;

/// Largest admitted message payload. Snapshots ride in one frame, so this
/// is far above [`qdelay_journal::MAX_FRAME_LEN`].
pub const REPL_MAX_PAYLOAD: u32 = 1 << 26;

pub(crate) const MSG_HELLO: u8 = 1;
pub(crate) const MSG_WELCOME: u8 = 2;
pub(crate) const MSG_SNAPSHOT: u8 = 3;
pub(crate) const MSG_RECORD: u8 = 4;
pub(crate) const MSG_CAUGHT_UP: u8 = 5;

/// A byte position in one `(epoch, shard)` segment stream: `offset` is
/// the end of the last applied record's frame within segment `counter`.
/// Replaying a stream from its cursor yields exactly the records the
/// cursor's owner has not applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cursor {
    pub epoch: u64,
    pub shard: u32,
    pub counter: u64,
    pub offset: u64,
}

/// How a replication stream fails. `Corrupt` means the bytes cannot be
/// trusted — the replica drops its cursors and reconnects for a full
/// resync; `Io`/`Eof` keep the cursors (the stream was valid, just cut).
#[derive(Debug)]
pub enum ReplError {
    Io(io::Error),
    /// The peer closed the connection cleanly.
    Eof,
    Corrupt(String),
}

impl ReplError {
    pub(crate) fn corrupt(msg: impl Into<String>) -> ReplError {
        ReplError::Corrupt(msg.into())
    }

    /// True when this is a read-timeout tick (the caller's poll interval),
    /// not a real failure.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            ReplError::Io(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Io(e) => write!(f, "replication i/o error: {e}"),
            ReplError::Eof => write!(f, "replication peer closed the stream"),
            ReplError::Corrupt(msg) => write!(f, "replication stream corrupt: {msg}"),
        }
    }
}

impl std::error::Error for ReplError {}

impl From<io::Error> for ReplError {
    fn from(e: io::Error) -> Self {
        ReplError::Io(e)
    }
}

/// A decoded replication message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    Hello { version: u32, cursors: Vec<Cursor> },
    Welcome { version: u32, resume: bool },
    Snapshot(Vec<u8>),
    Record { cursor: Cursor, record: Record },
    CaughtUp,
}

fn put_cursor(c: Cursor, out: &mut Vec<u8>) {
    out.extend_from_slice(&c.epoch.to_le_bytes());
    out.extend_from_slice(&c.shard.to_le_bytes());
    out.extend_from_slice(&c.counter.to_le_bytes());
    out.extend_from_slice(&c.offset.to_le_bytes());
}

/// Appends one framed HELLO carrying the replica's cursors.
pub fn encode_hello(cursors: &[Cursor], out: &mut Vec<u8>) {
    let start = frame::begin(out);
    out.push(MSG_HELLO);
    out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    out.extend_from_slice(&(cursors.len() as u32).to_le_bytes());
    for &c in cursors {
        put_cursor(c, out);
    }
    frame::finish(out, start);
}

/// Appends one framed WELCOME.
pub fn encode_welcome(resume: bool, out: &mut Vec<u8>) {
    let start = frame::begin(out);
    out.push(MSG_WELCOME);
    out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    out.push(u8::from(resume));
    frame::finish(out, start);
}

/// Appends one framed SNAPSHOT wrapping opaque snapshot bytes (empty
/// bytes mean "empty state": the replica wipes everything).
pub fn encode_snapshot(bytes: &[u8], out: &mut Vec<u8>) {
    let start = frame::begin(out);
    out.push(MSG_SNAPSHOT);
    out.extend_from_slice(bytes);
    frame::finish(out, start);
}

/// Appends one framed RECORD: the record plus the cursor a replica holds
/// after applying it.
pub fn encode_record(cursor: Cursor, record: &Record, out: &mut Vec<u8>) {
    let start = frame::begin(out);
    out.push(MSG_RECORD);
    put_cursor(cursor, out);
    record.encode(out);
    frame::finish(out, start);
}

/// Appends one framed CAUGHT_UP.
pub fn encode_caught_up(out: &mut Vec<u8>) {
    let start = frame::begin(out);
    out.push(MSG_CAUGHT_UP);
    frame::finish(out, start);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], ReplError> {
        if self.pos + n > self.buf.len() {
            return Err(ReplError::corrupt("message payload truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ReplError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ReplError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ReplError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn cursor(&mut self) -> Result<Cursor, ReplError> {
        Ok(Cursor {
            epoch: self.u64()?,
            shard: self.u32()?,
            counter: self.u64()?,
            offset: self.u64()?,
        })
    }

    fn done(&self) -> Result<(), ReplError> {
        if self.pos != self.buf.len() {
            return Err(ReplError::corrupt(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Decodes one message from a full frame payload. The payload must be
/// exactly one message; damage of any kind — unknown type, short body,
/// trailing bytes, an undecodable record, a version this build does not
/// speak — is a typed [`ReplError::Corrupt`].
pub fn decode_msg(payload: &[u8]) -> Result<Msg, ReplError> {
    let mut r = Reader { buf: payload, pos: 0 };
    match r.u8()? {
        MSG_HELLO => {
            let version = r.u32()?;
            if version != PROTO_VERSION {
                return Err(ReplError::corrupt(format!(
                    "peer speaks repl protocol {version}, this build speaks {PROTO_VERSION}"
                )));
            }
            let n = r.u32()? as usize;
            // 28 bytes per cursor: an absurd count is damage, not an
            // allocation request.
            if n > payload.len() / 28 {
                return Err(ReplError::corrupt("hello cursor count exceeds payload"));
            }
            let mut cursors = Vec::with_capacity(n);
            for _ in 0..n {
                cursors.push(r.cursor()?);
            }
            r.done()?;
            Ok(Msg::Hello { version, cursors })
        }
        MSG_WELCOME => {
            let version = r.u32()?;
            if version != PROTO_VERSION {
                return Err(ReplError::corrupt(format!(
                    "primary speaks repl protocol {version}, this build speaks {PROTO_VERSION}"
                )));
            }
            let resume = match r.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(ReplError::corrupt(format!("bad welcome resume byte {other}")))
                }
            };
            r.done()?;
            Ok(Msg::Welcome { version, resume })
        }
        MSG_SNAPSHOT => Ok(Msg::Snapshot(payload[1..].to_vec())),
        MSG_RECORD => {
            let cursor = r.cursor()?;
            let record = Record::decode(&payload[r.pos..])
                .map_err(|e| ReplError::corrupt(format!("record payload: {e}")))?;
            Ok(Msg::Record { cursor, record })
        }
        MSG_CAUGHT_UP => {
            r.done()?;
            Ok(Msg::CaughtUp)
        }
        other => Err(ReplError::corrupt(format!("unknown message type {other}"))),
    }
}

/// Exact encoded byte length of a record (without framing) — cheap enough
/// to call per publish for the lag-bytes gauge.
pub fn record_encoded_len(r: &Record) -> u64 {
    let feedback = 8 * (u64::from(r.predicted_bmbp.is_some())
        + u64::from(r.predicted_lognormal.is_some()));
    2 + r.site.len() as u64 + 2 + r.queue.len() as u64 + 1 + r.range.len() as u64
        + 8 + 8 + 1 + feedback
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdelay_journal::frame::Check;

    fn sample_record(seq: u64) -> Record {
        Record {
            site: "datastar".into(),
            queue: "normal".into(),
            range: "5-16".into(),
            seq,
            wait: seq as f64 * 1.5,
            predicted_bmbp: (seq % 2 == 0).then_some(seq as f64),
            predicted_lognormal: None,
            tombstone: false,
        }
    }

    fn decode_one(buf: &[u8]) -> Msg {
        match frame::check(buf, REPL_MAX_PAYLOAD) {
            Check::Complete { start, end, next } => {
                assert_eq!(next, buf.len(), "exactly one frame expected");
                decode_msg(&buf[start..end]).unwrap()
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn every_message_round_trips() {
        let cursors = vec![
            Cursor { epoch: 1, shard: 0, counter: 3, offset: 999 },
            Cursor { epoch: 2, shard: 7, counter: 0, offset: 24 },
        ];
        let mut buf = Vec::new();
        encode_hello(&cursors, &mut buf);
        assert_eq!(decode_one(&buf), Msg::Hello { version: PROTO_VERSION, cursors });

        for resume in [false, true] {
            let mut buf = Vec::new();
            encode_welcome(resume, &mut buf);
            assert_eq!(decode_one(&buf), Msg::Welcome { version: PROTO_VERSION, resume });
        }

        let mut buf = Vec::new();
        encode_snapshot(b"{\"version\":2}", &mut buf);
        assert_eq!(decode_one(&buf), Msg::Snapshot(b"{\"version\":2}".to_vec()));
        let mut buf = Vec::new();
        encode_snapshot(b"", &mut buf);
        assert_eq!(decode_one(&buf), Msg::Snapshot(Vec::new()));

        let cursor = Cursor { epoch: 4, shard: 2, counter: 1, offset: 480 };
        let record = sample_record(17);
        let mut buf = Vec::new();
        encode_record(cursor, &record, &mut buf);
        assert_eq!(decode_one(&buf), Msg::Record { cursor, record });

        let mut buf = Vec::new();
        encode_caught_up(&mut buf);
        assert_eq!(decode_one(&buf), Msg::CaughtUp);
    }

    #[test]
    fn damage_is_typed_never_invented() {
        // Unknown type byte.
        assert!(matches!(decode_msg(&[99]), Err(ReplError::Corrupt(_))));
        // Empty payload.
        assert!(matches!(decode_msg(&[]), Err(ReplError::Corrupt(_))));
        // Version mismatch.
        let mut hello = Vec::new();
        encode_hello(&[], &mut hello);
        let payload_at = qdelay_journal::FRAME_PREFIX_LEN;
        let mut bad = hello[payload_at..].to_vec();
        bad[1] = 9; // version LSB
        assert!(matches!(decode_msg(&bad), Err(ReplError::Corrupt(_))));
        // Truncations of every message never decode to something else.
        let cursor = Cursor { epoch: 1, shard: 0, counter: 0, offset: 100 };
        let mut rec = Vec::new();
        encode_record(cursor, &sample_record(3), &mut rec);
        let payload = &rec[payload_at..];
        for cut in 1..payload.len() {
            assert!(
                decode_msg(&payload[..cut]).is_err(),
                "truncated record at {cut} decoded"
            );
        }
        // Trailing bytes after a fixed-size message are rejected.
        let mut welcome = Vec::new();
        encode_welcome(true, &mut welcome);
        let mut padded = welcome[payload_at..].to_vec();
        padded.push(0);
        assert!(matches!(decode_msg(&padded), Err(ReplError::Corrupt(_))));
        // Absurd cursor count is damage, not an allocation.
        let mut huge = vec![MSG_HELLO];
        huge.extend_from_slice(&PROTO_VERSION.to_le_bytes());
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_msg(&huge), Err(ReplError::Corrupt(_))));
    }

    #[test]
    fn record_encoded_len_is_exact() {
        for rec in [
            sample_record(1),
            sample_record(2),
            Record::tombstone("s", "q", "65+", 9),
        ] {
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            assert_eq!(buf.len() as u64, record_encoded_len(&rec), "{rec:?}");
        }
    }
}
