//! Scheduling policies and administrator policy changes.
//!
//! The paper stresses that production schedulers implement "highly
//! customized priority mechanisms" that administrators "tune and adjust ...
//! often in a way that is not obvious to the user community" (§1). The
//! [`PolicySchedule`] models exactly those hidden adjustments: timed changes
//! to the discipline, to queue priorities, or temporary boosts for large
//! jobs (the mechanism behind Figure 2, where larger jobs were *favored*
//! for a month).


/// The scheduling discipline in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Strict first-come-first-served in priority order: the head job
    /// blocks everything behind it.
    Fcfs,
    /// EASY backfill: the head job gets a reservation; later jobs may jump
    /// ahead if they do not delay it.
    #[default]
    EasyBackfill,
    /// Conservative backfill: every waiting job gets a reservation; a job
    /// may start early only if it delays no earlier reservation.
    ConservativeBackfill,
    /// Prediction-driven backfill: per-queue BMBP bounds on queuing delay
    /// rank waiting jobs by deadline slack (remaining wait budget minus the
    /// predicted bound), then EASY backfill runs over that order — the
    /// paper's predictions closing the loop back into the scheduler.
    PredictiveBackfill,
}

/// One administrator action.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyChange {
    /// Switch the scheduling discipline.
    SetPolicy(SchedulerPolicy),
    /// Re-prioritize a queue (by index into the machine's queue list).
    SetQueuePriority {
        /// Queue index.
        queue: usize,
        /// New base priority.
        priority: i64,
    },
    /// Add `boost` to the priority of jobs requesting at least
    /// `min_procs` processors (0 boost disables). This is the Figure 2
    /// mechanism: a site temporarily favoring large jobs.
    SetLargeJobBoost {
        /// Smallest processor count that receives the boost.
        min_procs: u32,
        /// Priority increment (may be negative to penalize).
        boost: i64,
    },
}

/// A timed administrator action.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledChange {
    /// Simulation time at which the change takes effect, seconds.
    pub at: u64,
    /// The action.
    pub change: PolicyChange,
}

/// An ordered series of administrator actions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PolicySchedule {
    changes: Vec<ScheduledChange>,
}

impl PolicySchedule {
    /// An empty schedule (no mid-trace changes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a change; keeps the schedule sorted by time.
    pub fn add(&mut self, at: u64, change: PolicyChange) -> &mut Self {
        self.changes.push(ScheduledChange { at, change });
        self.changes.sort_by_key(|c| c.at);
        self
    }

    /// The scheduled changes in time order.
    pub fn changes(&self) -> &[ScheduledChange] {
        &self.changes
    }

    /// Splits off every change due at or before `now`, in order.
    pub fn drain_due(&mut self, now: u64) -> Vec<ScheduledChange> {
        let split = self.changes.partition_point(|c| c.at <= now);
        self.changes.drain(..split).collect()
    }
}

/// The dynamic priority state the engine consults when ordering jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PriorityState {
    queue_priorities: Vec<i64>,
    large_min_procs: u32,
    large_boost: i64,
}

impl PriorityState {
    /// Initial state from the machine's queue list.
    pub fn from_queues(priorities: Vec<i64>) -> Self {
        Self {
            queue_priorities: priorities,
            large_min_procs: u32::MAX,
            large_boost: 0,
        }
    }

    /// Applies one administrator action (policy-discipline changes are
    /// handled by the engine; they are no-ops here).
    pub fn apply(&mut self, change: &PolicyChange) {
        match change {
            PolicyChange::SetPolicy(_) => {}
            PolicyChange::SetQueuePriority { queue, priority } => {
                if let Some(p) = self.queue_priorities.get_mut(*queue) {
                    *p = *priority;
                }
            }
            PolicyChange::SetLargeJobBoost { min_procs, boost } => {
                self.large_min_procs = *min_procs;
                self.large_boost = *boost;
            }
        }
    }

    /// Effective priority of a job: queue base priority plus any large-job
    /// boost. Higher runs first; ties break FCFS by submit then id.
    pub fn job_priority(&self, queue: usize, procs: u32) -> i64 {
        let base = self.queue_priorities.get(queue).copied().unwrap_or(0);
        if procs >= self.large_min_procs {
            base + self.large_boost
        } else {
            base
        }
    }

    /// The total order the engine schedules by: higher priority first,
    /// FCFS (submit, then id) within a priority level. The engine keeps
    /// its waiting queue sorted by this key and re-sorts only when an
    /// administrator action perturbs it.
    pub fn sort_key(
        &self,
        queue: usize,
        procs: u32,
        submit: u64,
        id: u64,
    ) -> (std::cmp::Reverse<i64>, u64, u64) {
        (std::cmp::Reverse(self.job_priority(queue, procs)), submit, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_drains_in_order() {
        let mut s = PolicySchedule::new();
        s.add(500, PolicyChange::SetPolicy(SchedulerPolicy::Fcfs));
        s.add(100, PolicyChange::SetLargeJobBoost { min_procs: 64, boost: 5 });
        s.add(300, PolicyChange::SetQueuePriority { queue: 0, priority: 9 });
        let due = s.drain_due(300);
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].at, 100);
        assert_eq!(due[1].at, 300);
        assert_eq!(s.changes().len(), 1);
        assert!(s.drain_due(299).is_empty());
        assert_eq!(s.drain_due(10_000).len(), 1);
    }

    #[test]
    fn priority_state_applies_changes() {
        let mut st = PriorityState::from_queues(vec![10, 1]);
        assert_eq!(st.job_priority(0, 8), 10);
        assert_eq!(st.job_priority(1, 8), 1);
        st.apply(&PolicyChange::SetQueuePriority { queue: 1, priority: 20 });
        assert_eq!(st.job_priority(1, 8), 20);
        st.apply(&PolicyChange::SetLargeJobBoost { min_procs: 64, boost: 100 });
        assert_eq!(st.job_priority(0, 8), 10);
        assert_eq!(st.job_priority(0, 64), 110);
        // Disabling the boost.
        st.apply(&PolicyChange::SetLargeJobBoost { min_procs: u32::MAX, boost: 0 });
        assert_eq!(st.job_priority(0, 64), 10);
    }

    #[test]
    fn unknown_queue_defaults_to_zero() {
        let st = PriorityState::from_queues(vec![5]);
        assert_eq!(st.job_priority(7, 4), 0);
    }
}
