//! The persistent incremental availability profile for conservative
//! backfill.
//!
//! The seed engine rebuilt a piecewise-constant free-processor profile from
//! scratch on every scheduling event and re-placed every reservation, so a
//! pass over a `W`-deep queue cost O(W·P²) in the profile size `P` and a
//! 128-job reservation cap was needed to keep overloaded queues tolerable —
//! silently changing schedules exactly in the deep-queue tail. This module
//! maintains the profile *across* events instead:
//!
//! * free-processor counts are stored as a delta map keyed by time
//!   (`BTreeMap<u64, i64>`), so a reservation's two edge points insert and
//!   remove in O(log n);
//! * job starts and finishes update `free_now` and a single release point
//!   each, in O(log n);
//! * the earliest-fit scan walks deltas in time order from the query point
//!   and stops at the first window that stays feasible: O(log n + k) for
//!   `k` points examined (reported to the
//!   `batchsim.profile.points_scanned` histogram by the engine).
//!
//! The engine keeps reservations valid across events whenever completions
//! match their estimates; any deviation (early/late finish, priority
//! change, out-of-order arrival) invalidates them and the engine re-places
//! against this same structure — see `engine.rs` for the invalidation
//! rules and DESIGN.md §10 for the complexity table.

use crate::cluster::Cluster;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// A reservation held in the profile: `procs` processors over
/// `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Reserved window start (inclusive).
    pub start: u64,
    /// Reserved window end (exclusive); `u64::MAX` means "forever"
    /// (saturated arithmetic on absurd estimates).
    pub end: u64,
    /// Processors reserved.
    pub procs: u32,
}

#[derive(Debug, Clone, Copy)]
struct RunningRelease {
    /// Current (possibly clamped) profile key of the release point.
    key: u64,
    procs: u32,
}

/// Piecewise-constant free-processor availability over future time,
/// maintained incrementally.
///
/// Invariants (checked by [`AvailabilityProfile::validate`]):
///
/// * every delta key is strictly greater than `now` after
///   [`AvailabilityProfile::advance`];
/// * no delta entry is zero (adjacent segments always differ — removing a
///   reservation coalesces its neighbors back together);
/// * every prefix sum `free_now + Σ deltas` stays within
///   `[0, capacity]`;
/// * releasing every job and removing every reservation restores the
///   empty profile exactly.
#[derive(Debug, Clone)]
pub struct AvailabilityProfile {
    capacity: u32,
    now: u64,
    /// Free processors at the present instant (mirrors `Cluster::free`).
    free_now: u32,
    /// Future changes to the free count: at key `t` the count changes by
    /// the signed value (release: `+procs`; reservation: `-procs` at start,
    /// `+procs` at end).
    deltas: BTreeMap<u64, i64>,
    /// Release key -> ids of running jobs estimated to release then.
    release_times: BTreeMap<u64, Vec<u64>>,
    /// Running job id -> its release point.
    running: HashMap<u64, RunningRelease>,
    /// Waiting job id -> its reservation.
    reservations: HashMap<u64, Reservation>,
    /// Reservation start -> ids reserved to start then (the due-index the
    /// engine uses to find startable jobs in O(log n)).
    res_starts: BTreeMap<u64, Vec<u64>>,
}

impl AvailabilityProfile {
    /// An empty profile for an idle machine of `capacity` processors.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            now: 0,
            free_now: capacity,
            deltas: BTreeMap::new(),
            release_times: BTreeMap::new(),
            running: HashMap::new(),
            reservations: HashMap::new(),
            res_starts: BTreeMap::new(),
        }
    }

    /// Rebuilds the profile from a cluster's running set (used when the
    /// engine regains the conservative policy after another discipline ran
    /// and the profile went stale). Drops all reservations.
    pub fn sync(&mut self, cluster: &Cluster, now: u64) {
        self.deltas.clear();
        self.release_times.clear();
        self.running.clear();
        self.reservations.clear();
        self.res_starts.clear();
        self.capacity = cluster.capacity();
        self.free_now = cluster.free();
        self.now = now;
        for (id, est_finish, procs) in cluster.running_jobs() {
            let key = est_finish.max(now + 1);
            *self.deltas.entry(key).or_insert(0) += i64::from(procs);
            self.release_times.entry(key).or_default().push(id);
            self.running.insert(id, RunningRelease { key, procs });
        }
    }

    /// Total processors.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Free processors at the present instant.
    pub fn free_now(&self) -> u32 {
        self.free_now
    }

    /// The present instant (last `advance` time).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of change points currently stored.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// Whether the profile holds no future change points.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// The reservation held for `id`, if any.
    pub fn reservation(&self, id: u64) -> Option<Reservation> {
        self.reservations.get(&id).copied()
    }

    /// Number of reservations currently held.
    pub fn reservation_count(&self) -> usize {
        self.reservations.len()
    }

    /// Ids of jobs whose reservation start is at or before `now`.
    pub fn reservations_due(&self, now: u64) -> Vec<u64> {
        self.res_starts
            .range(..=now)
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect()
    }

    /// Moves the clock to `now`, clamping overdue release points (jobs
    /// whose estimate has passed but whose finish event has not fired) to
    /// `now + 1`: their processors must not be counted free at the present
    /// instant. Returns `true` if any point moved — held reservations were
    /// computed against the old profile and must be re-placed.
    pub fn advance(&mut self, now: u64) -> bool {
        self.now = now;
        let mut shifted = false;
        while let Some((&t, _)) = self.release_times.range(..=now).next() {
            shifted = true;
            let ids = self.release_times.remove(&t).expect("key just observed");
            for id in &ids {
                let procs = {
                    let entry = self.running.get_mut(id).expect("release is running");
                    entry.key = now + 1;
                    entry.procs
                };
                self.sub_delta(t, i64::from(procs));
                self.add_delta(now + 1, i64::from(procs));
            }
            self.release_times.entry(now + 1).or_default().extend(ids);
        }
        shifted
    }

    /// Records a job start: `procs` leave the free pool now, returning at
    /// `est_finish` (clamped past the present instant like every release).
    ///
    /// # Panics
    ///
    /// Panics if the id already has a release point or the free count would
    /// go negative.
    pub fn on_allocate(&mut self, id: u64, procs: u32, est_finish: u64, now: u64) {
        assert!(
            self.free_now >= procs,
            "profile allocation of {procs} exceeds {} free",
            self.free_now
        );
        self.free_now -= procs;
        let key = est_finish.max(now + 1);
        self.add_delta(key, i64::from(procs));
        self.release_times.entry(key).or_default().push(id);
        let prev = self.running.insert(id, RunningRelease { key, procs });
        assert!(prev.is_none(), "job {id} already has a release point");
    }

    /// Records a job finish at `now`: its release point is removed and its
    /// processors are free immediately. Returns `true` if the completion
    /// deviated from the profile's belief (the release point was not at
    /// exactly `now`) — held reservations assumed the old release time and
    /// must be re-placed.
    ///
    /// # Panics
    ///
    /// Panics if the id has no release point.
    pub fn on_release(&mut self, id: u64, now: u64) -> bool {
        let entry = self
            .running
            .remove(&id)
            .unwrap_or_else(|| panic!("job {id} has no release point"));
        self.sub_delta(entry.key, i64::from(entry.procs));
        let ids = self
            .release_times
            .get_mut(&entry.key)
            .expect("release key indexed");
        ids.retain(|&x| x != id);
        if ids.is_empty() {
            self.release_times.remove(&entry.key);
        }
        self.free_now += entry.procs;
        debug_assert!(self.free_now <= self.capacity);
        entry.key != now
    }

    /// Inserts a reservation of `procs` over `[start, start + duration)`.
    ///
    /// # Panics
    ///
    /// Panics if the id already holds a reservation.
    pub fn reserve(&mut self, id: u64, procs: u32, start: u64, duration: u64) {
        let end = start.saturating_add(duration);
        self.sub_delta(start, i64::from(procs));
        if end != u64::MAX {
            self.add_delta(end, i64::from(procs));
        }
        self.res_starts.entry(start).or_default().push(id);
        let prev = self.reservations.insert(id, Reservation { start, end, procs });
        assert!(prev.is_none(), "job {id} is already reserved");
    }

    /// Removes a reservation, coalescing its edge points away. Returns the
    /// removed reservation, or `None` if the id held none.
    pub fn unreserve(&mut self, id: u64) -> Option<Reservation> {
        let res = self.reservations.remove(&id)?;
        self.add_delta(res.start, i64::from(res.procs));
        if res.end != u64::MAX {
            self.sub_delta(res.end, i64::from(res.procs));
        }
        let ids = self
            .res_starts
            .get_mut(&res.start)
            .expect("reservation start indexed");
        ids.retain(|&x| x != id);
        if ids.is_empty() {
            self.res_starts.remove(&res.start);
        }
        Some(res)
    }

    /// Drops every reservation (release points stay). Used when held
    /// reservations are invalidated and the engine re-places from scratch.
    pub fn clear_reservations(&mut self) {
        let ids: Vec<u64> = self.reservations.keys().copied().collect();
        for id in ids {
            self.unreserve(id);
        }
        debug_assert!(self.res_starts.is_empty());
    }

    /// Earliest `t >= from` such that `procs` stay free throughout
    /// `[t, t + duration)`, plus the number of change points examined.
    /// Returns `(u64::MAX, scanned)` if no window exists (only possible
    /// when saturated "forever" reservations block the tail).
    pub fn earliest_fit(&self, procs: u32, duration: u64, from: u64) -> (u64, u64) {
        let need = i64::from(procs);
        let mut free = i64::from(self.free_now);
        for (_, d) in self.deltas.range(..=from) {
            free += d;
        }
        let mut anchor = from;
        let mut ok = free >= need;
        let mut scanned = 0u64;
        for (&t, &d) in self.deltas.range((Bound::Excluded(from), Bound::Unbounded)) {
            scanned += 1;
            if ok && t >= anchor.saturating_add(duration) {
                return (anchor, scanned);
            }
            free += d;
            if free >= need {
                if !ok {
                    anchor = t;
                    ok = true;
                }
            } else {
                ok = false;
            }
        }
        if ok {
            (anchor, scanned)
        } else {
            (u64::MAX, scanned)
        }
    }

    /// The absolute profile as `(time, free_from_then_on)` points, starting
    /// with `(now, free_now)`. Strictly increasing times; adjacent counts
    /// always differ (a test/inspection view — O(n)).
    pub fn points(&self) -> Vec<(u64, u32)> {
        let mut v = vec![(self.now, self.free_now)];
        let mut free = i64::from(self.free_now);
        for (&t, &d) in &self.deltas {
            free += d;
            debug_assert!(free >= 0 && free <= i64::from(self.capacity));
            v.push((t, free as u32));
        }
        v
    }

    /// Checks every structural invariant, returning a description of the
    /// first violation. Used by the property-test battery.
    pub fn validate(&self) -> Result<(), String> {
        let mut free = i64::from(self.free_now);
        if free < 0 || free > i64::from(self.capacity) {
            return Err(format!("free_now {free} outside [0, {}]", self.capacity));
        }
        for (&t, &d) in &self.deltas {
            if d == 0 {
                return Err(format!("zero delta retained at t={t} (coalescing broken)"));
            }
            free += d;
            if free < 0 || free > i64::from(self.capacity) {
                return Err(format!(
                    "free count {free} at t={t} outside [0, {}]",
                    self.capacity
                ));
            }
        }
        let running_procs: i64 = self.running.values().map(|r| i64::from(r.procs)).sum();
        if running_procs + i64::from(self.free_now) != i64::from(self.capacity) {
            return Err(format!(
                "running procs {running_procs} + free {} != capacity {}",
                self.free_now, self.capacity
            ));
        }
        // Rebuild the delta map from bookkeeping and compare exactly.
        let mut expect: BTreeMap<u64, i64> = BTreeMap::new();
        for r in self.running.values() {
            *expect.entry(r.key).or_insert(0) += i64::from(r.procs);
        }
        for res in self.reservations.values() {
            *expect.entry(res.start).or_insert(0) -= i64::from(res.procs);
            if res.end != u64::MAX {
                *expect.entry(res.end).or_insert(0) += i64::from(res.procs);
            }
        }
        expect.retain(|_, d| *d != 0);
        if expect != self.deltas {
            return Err("delta map disagrees with release/reservation bookkeeping".into());
        }
        Ok(())
    }

    fn add_delta(&mut self, t: u64, d: i64) {
        debug_assert!(d > 0);
        let e = self.deltas.entry(t).or_insert(0);
        *e += d;
        if *e == 0 {
            self.deltas.remove(&t);
        }
    }

    fn sub_delta(&mut self, t: u64, d: i64) {
        debug_assert!(d > 0);
        let e = self.deltas.entry(t).or_insert(0);
        *e -= d;
        if *e == 0 {
            self.deltas.remove(&t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile_fits_immediately() {
        let p = AvailabilityProfile::new(16);
        let (t, scanned) = p.earliest_fit(16, 1000, 0);
        assert_eq!((t, scanned), (0, 0));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn allocate_release_roundtrip_restores_empty() {
        let mut p = AvailabilityProfile::new(10);
        p.on_allocate(1, 6, 100, 0);
        p.on_allocate(2, 4, 200, 0);
        assert_eq!(p.free_now(), 0);
        assert_eq!(p.len(), 2);
        assert!(p.validate().is_ok());
        assert!(!p.on_release(1, 100), "on-time: key == now");
        assert_eq!(p.free_now(), 6);
        p.on_release(2, 200);
        assert_eq!(p.free_now(), 10);
        assert!(p.is_empty());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn on_time_release_is_clean_early_is_dirty() {
        let mut p = AvailabilityProfile::new(10);
        p.on_allocate(1, 4, 100, 0);
        p.on_allocate(2, 4, 100, 0);
        assert!(!p.on_release(1, 100), "on-time release keeps reservations");
        let mut q = AvailabilityProfile::new(10);
        q.on_allocate(1, 4, 100, 0);
        assert!(q.on_release(1, 40), "early release invalidates");
    }

    #[test]
    fn advance_clamps_overdue_releases_and_reports() {
        let mut p = AvailabilityProfile::new(10);
        p.on_allocate(1, 10, 100, 0);
        assert!(!p.advance(50), "nothing overdue yet");
        assert!(p.advance(150), "overdue release must shift");
        // Processors are not free at the present instant.
        let (t, _) = p.earliest_fit(10, 10, 150);
        assert_eq!(t, 151);
        assert!(p.validate().is_ok());
        // The late job finishing later is a deviation (key is 151, not 160).
        assert!(p.on_release(1, 160));
        assert!(p.is_empty());
    }

    #[test]
    fn reserve_unreserve_coalesces_exactly() {
        let mut p = AvailabilityProfile::new(8);
        p.on_allocate(1, 8, 100, 0);
        p.reserve(10, 8, 100, 50);
        p.reserve(11, 8, 150, 50);
        assert!(p.validate().is_ok());
        // Adjacent reservations: the shared boundary at 150 coalesces away.
        let pts = p.points();
        assert_eq!(pts, vec![(0, 0), (200, 8)]);
        p.unreserve(11);
        assert_eq!(p.points(), vec![(0, 0), (150, 8)]);
        p.unreserve(10);
        assert_eq!(p.points(), vec![(0, 0), (100, 8)]);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn earliest_fit_finds_holes_and_tail() {
        let mut p = AvailabilityProfile::new(10);
        p.on_allocate(1, 8, 1000, 0);
        // 2 free until 1000, then 10.
        let (t, _) = p.earliest_fit(2, 500, 0);
        assert_eq!(t, 0, "small job fits in the hole");
        let (t, _) = p.earliest_fit(10, 100, 0);
        assert_eq!(t, 1000);
        // A reservation plugging the hole pushes the small job out to the
        // release at 1000 (free rises to 8 there even with the reservation
        // still holding 2 procs until 2000).
        p.reserve(2, 2, 0, 2000);
        let (t, _) = p.earliest_fit(2, 500, 0);
        assert_eq!(t, 1000);
        // Saturate the window after the release too: now nothing fits
        // before the reservation ends.
        p.reserve(3, 8, 1000, 1000);
        let (t, _) = p.earliest_fit(2, 500, 0);
        assert_eq!(t, 2000);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn forever_reservation_blocks_tail() {
        let mut p = AvailabilityProfile::new(4);
        p.reserve(1, 4, 10, u64::MAX); // end saturates to forever
        let (t, _) = p.earliest_fit(1, 1, 0);
        assert_eq!(t, 0, "window before the forever reservation still fits");
        let (t, _) = p.earliest_fit(1, 20, 0);
        assert_eq!(t, u64::MAX, "no window crossing the forever reservation");
        assert!(p.validate().is_ok());
    }

    #[test]
    fn due_index_tracks_reservation_starts() {
        let mut p = AvailabilityProfile::new(4);
        p.reserve(1, 2, 100, 10);
        p.reserve(2, 2, 100, 10);
        p.reserve(3, 2, 200, 10);
        assert!(p.reservations_due(99).is_empty());
        let mut due = p.reservations_due(100);
        due.sort_unstable();
        assert_eq!(due, vec![1, 2]);
        p.unreserve(1);
        assert_eq!(p.reservations_due(100), vec![2]);
        p.clear_reservations();
        assert!(p.reservations_due(u64::MAX).is_empty());
        assert!(p.is_empty());
    }
}
