//! Workload generation for the cluster simulator.
//!
//! Produces job streams with the features production logs show: Poisson
//! arrivals modulated by time-of-day and day-of-week, heavy-tailed
//! (log-normal) runtimes, size-skewed processor requests, and the
//! systematic runtime *over*-estimation users are famous for (backfill
//! schedulers see estimates, not truths).

use crate::{MachineConfig, SimJob};
use qdelay_trace::synth::ProcMix;
use qdelay_rng::{Distribution, Exp1, Normal, Rng, StdRng};

/// Workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Length of the generated trace, days.
    pub days: u32,
    /// Mean arrivals per day (across all queues).
    pub jobs_per_day: f64,
    /// RNG seed.
    pub seed: u64,
    /// Relative submission rates per queue (`None` = uniform across the
    /// machine's queues).
    pub queue_weights: Option<Vec<f64>>,
    /// Processor-request mix.
    pub proc_mix: ProcMix,
    /// Mean of `ln(runtime)`; default `ln(3600)` (one hour median).
    pub runtime_log_mean: f64,
    /// Standard deviation of `ln(runtime)`.
    pub runtime_log_sd: f64,
    /// Mean multiplicative over-estimation factor (>= 1).
    pub estimate_factor: f64,
    /// Diurnal arrival-rate modulation amplitude in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Weekend arrival-rate multiplier.
    pub weekend_factor: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            days: 30,
            jobs_per_day: 300.0,
            seed: 42,
            queue_weights: None,
            proc_mix: ProcMix::new([0.45, 0.30, 0.20, 0.05]),
            runtime_log_mean: 3600.0f64.ln(),
            runtime_log_sd: 1.4,
            estimate_factor: 2.0,
            diurnal_amplitude: 0.6,
            weekend_factor: 0.5,
        }
    }
}

/// Generates a job stream for `machine`.
///
/// Processor requests are clamped to the machine size and to each queue's
/// admission cap; runtimes are clamped to `[30 s, 7 days]` and to the
/// queue's runtime cap. Estimates are at least the true runtime (the
/// scheduler kills jobs at their estimate on real systems, so rational
/// users over-estimate).
///
/// # Panics
///
/// Panics if `queue_weights` is provided with a length different from the
/// machine's queue count, or contains a negative weight.
pub fn generate(config: &WorkloadConfig, machine: &MachineConfig) -> Vec<SimJob> {
    let nq = machine.queues.len();
    let weights: Vec<f64> = match &config.queue_weights {
        Some(w) => {
            assert_eq!(w.len(), nq, "queue_weights length must match queue count");
            assert!(w.iter().all(|&x| x >= 0.0), "weights must be non-negative");
            w.clone()
        }
        None => vec![1.0; nq],
    };
    let wsum: f64 = weights.iter().sum();
    assert!(wsum > 0.0, "at least one queue weight must be positive");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let span = config.days as f64 * 86_400.0;
    let total_jobs = (config.days as f64 * config.jobs_per_day).round() as usize;
    let base_gap = span / total_jobs.max(1) as f64;
    let runtime_dist =
        Normal::new(config.runtime_log_mean, config.runtime_log_sd).expect("valid normal");
    let over_dist = Normal::new(config.estimate_factor.max(1.0).ln(), 0.5).expect("valid normal");

    let mut jobs = Vec::with_capacity(total_jobs);
    let mut t = 0.0f64;
    for id in 0..total_jobs as u64 {
        // Rate-modulated renewal arrivals.
        let hour = (t / 3600.0) % 24.0;
        let day = ((t / 86_400.0) as u64) % 7;
        let diurnal =
            1.0 + config.diurnal_amplitude * ((hour - 14.0) / 24.0 * std::f64::consts::TAU).cos();
        let weekly = if day >= 5 { config.weekend_factor } else { 1.0 };
        let e: f64 = Exp1.sample(&mut rng);
        t += base_gap * e / (diurnal * weekly).max(0.05);

        // Queue by weight.
        let mut pick: f64 = rng.gen_f64() * wsum;
        let mut queue = nq - 1;
        for (qi, &w) in weights.iter().enumerate() {
            if pick < w {
                queue = qi;
                break;
            }
            pick -= w;
        }
        let spec = &machine.queues[queue];

        // Size and runtime under queue admission rules.
        let max_procs = spec.max_procs.unwrap_or(machine.procs).min(machine.procs);
        let procs = config.proc_mix.sample_procs(&mut rng).clamp(1, max_procs);
        let raw_runtime = runtime_dist.sample(&mut rng).exp();
        let cap = spec.max_runtime.unwrap_or(7 * 86_400) as f64;
        let runtime = raw_runtime.clamp(30.0, cap.min(7.0 * 86_400.0)) as u64;
        let over: f64 = over_dist.sample(&mut rng).exp().max(1.0);
        let estimate = ((runtime as f64 * over) as u64).min(cap as u64).max(runtime);

        jobs.push(SimJob {
            id,
            submit: t as u64,
            procs,
            runtime: runtime.max(1),
            estimate,
            queue,
        });
    }
    jobs.sort_by_key(|j| (j.submit, j.id));
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueueSpec;

    fn machine() -> MachineConfig {
        MachineConfig {
            procs: 128,
            queues: vec![
                QueueSpec::new("normal", 5),
                QueueSpec::new("short", 10).with_max_runtime(3600).with_max_procs(16),
            ],
        }
    }

    #[test]
    fn respects_job_count_and_span() {
        let cfg = WorkloadConfig {
            days: 10,
            jobs_per_day: 100.0,
            ..WorkloadConfig::default()
        };
        let jobs = generate(&cfg, &machine());
        assert_eq!(jobs.len(), 1000);
        // Arrivals sorted, roughly within the span (renewal noise allowed).
        assert!(jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
        let last = jobs.last().unwrap().submit;
        assert!(last < 20 * 86_400, "last arrival {last}");
    }

    #[test]
    fn queue_admission_rules_enforced() {
        let jobs = generate(&WorkloadConfig::default(), &machine());
        for j in &jobs {
            assert!(j.procs >= 1 && j.procs <= 128);
            assert!(j.estimate >= j.runtime);
            if j.queue == 1 {
                assert!(j.procs <= 16, "short queue caps procs");
                assert!(j.runtime <= 3600, "short queue caps runtime");
            }
        }
    }

    #[test]
    fn queue_weights_shift_traffic() {
        let cfg = WorkloadConfig {
            queue_weights: Some(vec![9.0, 1.0]),
            ..WorkloadConfig::default()
        };
        let jobs = generate(&cfg, &machine());
        let q0 = jobs.iter().filter(|j| j.queue == 0).count();
        let q1 = jobs.len() - q0;
        assert!(q0 > q1 * 5, "q0={q0}, q1={q1}");
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn wrong_weight_length_panics() {
        let cfg = WorkloadConfig {
            queue_weights: Some(vec![1.0]),
            ..WorkloadConfig::default()
        };
        generate(&cfg, &machine());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&WorkloadConfig::default(), &machine());
        let b = generate(&WorkloadConfig::default(), &machine());
        assert_eq!(a, b);
        let c = generate(
            &WorkloadConfig {
                seed: 1,
                ..WorkloadConfig::default()
            },
            &machine(),
        );
        assert_ne!(a, c);
    }

    #[test]
    fn runtimes_are_heavy_tailed() {
        let jobs = generate(
            &WorkloadConfig {
                days: 30,
                jobs_per_day: 500.0,
                ..WorkloadConfig::default()
            },
            &machine(),
        );
        let rts: Vec<f64> = jobs.iter().map(|j| j.runtime as f64).collect();
        let s = qdelay_stats::describe::Summary::from_sample(&rts).unwrap();
        assert!(s.mean > s.median, "runtime mean {} <= median {}", s.mean, s.median);
    }
}
