//! # qdelay-batchsim
//!
//! A discrete-event simulator of a space-shared (batch-scheduled) parallel
//! machine — the substrate that *produces* queue-wait traces endogenously.
//!
//! The paper evaluates on logs from production machines whose scheduling
//! policies are "partially or completely hidden ... and may change over
//! time" (§5.2). This crate models exactly that environment:
//!
//! * a machine with a fixed processor count, space-shared: every job gets a
//!   dedicated partition for its whole runtime ([`cluster`]);
//! * multiple submission queues with administrator-assigned priorities
//!   ([`QueueSpec`]);
//! * a scheduler running strict FCFS, priority-FCFS, EASY backfill, or
//!   conservative backfill ([`policy`], [`engine`]);
//! * administrator *policy changes* at arbitrary points in the trace —
//!   queue-priority reshuffles, backfill toggles, temporary boosts for
//!   large jobs (the mechanism behind the paper's Figure 2 surprise) —
//!   which are precisely the nonstationarity BMBP's change-point detection
//!   targets;
//! * a workload generator with diurnal arrival cycles, heavy-tailed
//!   runtimes, and user runtime *over*-estimates ([`workload`]).
//!
//! The output is a [`qdelay_trace::Trace`] per queue, directly consumable by
//! the evaluation harness.
//!
//! # Example
//!
//! ```
//! use qdelay_batchsim::{engine::Simulation, MachineConfig, QueueSpec,
//!                       policy::SchedulerPolicy, workload::WorkloadConfig};
//!
//! let machine = MachineConfig {
//!     procs: 128,
//!     queues: vec![QueueSpec::new("normal", 10), QueueSpec::new("low", 1)],
//! };
//! let workload = WorkloadConfig { days: 30, jobs_per_day: 200.0, seed: 7,
//!                                 ..WorkloadConfig::default() };
//! let mut sim = Simulation::new(machine, SchedulerPolicy::EasyBackfill);
//! let traces = sim.run(&workload);
//! assert_eq!(traces.len(), 2);
//! ```

pub mod cluster;
pub mod engine;
pub mod metrics;
pub mod policy;
pub mod profile;
pub mod workload;

/// Which conservative-backfill implementation the engine runs.
///
/// The naive rebuild-per-event engine is retained as the differential
/// oracle: the incremental engine must produce byte-identical schedules
/// (see `tests/backfill_differential.rs`), and benches use it as the
/// seed-era baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConservativeEngine {
    /// Persistent incremental availability profile (the default):
    /// O(log n) event updates, reservations kept across events and
    /// re-placed only when invalidated.
    #[default]
    Incremental,
    /// Seed-era oracle: rebuild the profile and re-place every
    /// reservation on every scheduling event.
    NaiveRebuild,
}

/// Tuning knobs for the backfill disciplines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackfillConfig {
    /// Most waiting jobs (in priority order) that receive reservations per
    /// conservative pass; `None` (the default) is unbounded. The seed
    /// engine hard-coded 128 to keep rebuild-per-event passes tolerable on
    /// overloaded queues — silently truncating exactly the deep-queue tail.
    /// With the incremental profile the cap is unnecessary; setting it
    /// restores the legacy capped behavior (every pass re-places, so the
    /// truncation point is well-defined).
    pub reservation_depth: Option<usize>,
    /// Which conservative-backfill implementation runs.
    pub engine: ConservativeEngine,
}

impl Default for BackfillConfig {
    fn default() -> Self {
        Self {
            reservation_depth: None,
            engine: ConservativeEngine::Incremental,
        }
    }
}


/// Per-job wait-budget (deadline) derivation for deadline-aware policies.
///
/// Jobs carry no deadline field of their own (real batch logs don't have
/// one either); instead a site-wide rule derives each job's maximum
/// acceptable queuing delay from what the scheduler already knows:
///
/// ```text
/// wait_budget(job) = base + factor × estimate
/// ```
///
/// A job's SLO is *missed* when its actual wait exceeds that budget. The
/// [`policy::SchedulerPolicy::PredictiveBackfill`] discipline orders jobs
/// by remaining budget minus the predicted delay bound, and the admission
/// records compare the served bound against the full budget at arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineConfig {
    /// Flat wait allowance every job receives, seconds.
    pub base: u64,
    /// Additional allowance per second of the user's runtime estimate
    /// (longer jobs tolerate proportionally longer queues).
    pub factor: u64,
}

impl Default for DeadlineConfig {
    fn default() -> Self {
        Self { base: 600, factor: 1 }
    }
}

impl DeadlineConfig {
    /// The maximum acceptable queuing delay for a job with this runtime
    /// estimate, seconds.
    pub fn wait_budget(&self, estimate: u64) -> u64 {
        self.base.saturating_add(self.factor.saturating_mul(estimate))
    }
}

/// A job inside the simulator.
///
/// `runtime` is the true execution time; `estimate` is what the user told
/// the scheduler (backfill decisions use the estimate, as on real systems).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimJob {
    /// Unique, monotonically increasing id (also the FCFS tiebreak).
    pub id: u64,
    /// Submission time, seconds.
    pub submit: u64,
    /// Processors requested (dedicated for the whole runtime).
    pub procs: u32,
    /// True runtime, seconds.
    pub runtime: u64,
    /// User-supplied runtime estimate, seconds (>= runtime on average).
    pub estimate: u64,
    /// Index into the machine's queue list.
    pub queue: usize,
}

/// A submission queue and its administrator-assigned base priority.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueSpec {
    /// Queue name, e.g. `"normal"`.
    pub name: String,
    /// Base priority; higher is served first.
    pub priority: i64,
    /// Largest processor request the queue admits (`None` = machine size).
    pub max_procs: Option<u32>,
    /// Longest runtime estimate the queue admits, seconds (`None` = no cap).
    pub max_runtime: Option<u64>,
}

impl QueueSpec {
    /// Creates a queue with a name and base priority, no admission caps.
    pub fn new(name: impl Into<String>, priority: i64) -> Self {
        Self {
            name: name.into(),
            priority,
            max_procs: None,
            max_runtime: None,
        }
    }

    /// Sets the processor-count admission cap.
    pub fn with_max_procs(mut self, max_procs: u32) -> Self {
        self.max_procs = Some(max_procs);
        self
    }

    /// Sets the runtime admission cap.
    pub fn with_max_runtime(mut self, max_runtime: u64) -> Self {
        self.max_runtime = Some(max_runtime);
        self
    }
}

/// Static description of the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Total processors in the machine.
    pub procs: u32,
    /// The submission queues, index-addressed by [`SimJob::queue`].
    pub queues: Vec<QueueSpec>,
}

impl MachineConfig {
    /// A single-queue machine — the LLNL Blue Pacific shape.
    pub fn single_queue(procs: u32) -> Self {
        Self {
            procs,
            queues: vec![QueueSpec::new("all", 0)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_spec_builder() {
        let q = QueueSpec::new("short", 5)
            .with_max_procs(32)
            .with_max_runtime(3600);
        assert_eq!(q.name, "short");
        assert_eq!(q.priority, 5);
        assert_eq!(q.max_procs, Some(32));
        assert_eq!(q.max_runtime, Some(3600));
    }

    #[test]
    fn single_queue_machine() {
        let m = MachineConfig::single_queue(512);
        assert_eq!(m.procs, 512);
        assert_eq!(m.queues.len(), 1);
        assert_eq!(m.queues[0].name, "all");
    }
}
