//! The discrete-event simulation engine.
//!
//! Two event kinds drive the machine: job arrivals and job completions.
//! After every event the scheduler runs a pass under the policy currently
//! in force, starting whichever waiting jobs the discipline allows. Starts
//! use *estimated* runtimes for reservations (what the scheduler knows) but
//! schedule the completion event at the *true* runtime (what actually
//! happens) — the same information asymmetry real backfill schedulers live
//! with.
//!
//! # Conservative backfill: incremental vs naive
//!
//! Conservative backfill gives every waiting job a reservation. The seed
//! engine rebuilt the availability profile and re-placed every reservation
//! on every event (O(W·P²) per pass), so a 128-job reservation cap was
//! needed on overloaded queues. The default engine now maintains a
//! persistent [`AvailabilityProfile`] across events and keeps reservations
//! valid between them; a full re-placement happens only when something the
//! held reservations assumed turns out false:
//!
//! * a job finishes **early or late** relative to its estimate (including
//!   overdue jobs whose release point had to be clamped past `now`);
//! * an arrival does **not** sort after every waiting job (it would have
//!   been placed before them in priority order);
//! * an administrator action changes the policy or any priority;
//! * the profile went stale because another discipline ran;
//! * a finite [`BackfillConfig::reservation_depth`] is configured (legacy
//!   capped mode re-places every pass so the truncation point is defined).
//!
//! On every other event — the common case when completions match their
//! estimates — the pass is O(log n) per start plus one O(log n + k) scan
//! per new arrival. The naive rebuild engine is retained behind
//! [`ConservativeEngine::NaiveRebuild`] as the differential oracle: both
//! produce byte-identical schedules (see `tests/backfill_differential.rs`).

use crate::cluster::Cluster;
use crate::policy::{PolicyChange, PolicySchedule, PriorityState, SchedulerPolicy};
use crate::profile::AvailabilityProfile;
use crate::workload::{self, WorkloadConfig};
use crate::{BackfillConfig, ConservativeEngine, DeadlineConfig, MachineConfig, SimJob};
use qdelay_predict::bmbp::Bmbp;
use qdelay_predict::QuantilePredictor;
use qdelay_telemetry::{Counter, Gauge, LatencyHistogram};
use qdelay_trace::{JobRecord, Trace};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Jobs examined per conservative-backfill pass (starts plus placements on
/// incremental passes; full re-placement length otherwise).
static BACKFILL_PASS_CONSIDERED: LatencyHistogram =
    LatencyHistogram::new("batchsim.backfill.pass_considered");
/// Conservative passes truncated by a finite
/// [`BackfillConfig::reservation_depth`] while jobs were still waiting.
/// **Deprecated**: the default configuration is unbounded, so this counter
/// only advances in legacy capped mode.
static BACKFILL_CAP_HITS: Counter = Counter::new("batchsim.backfill.cap_hits");
/// High-watermark of the waiting-queue depth across simulated runs.
static QUEUE_DEPTH_PEAK: Gauge = Gauge::new("batchsim.queue_depth_peak");
/// Profile change points examined per earliest-fit scan — the `k` in the
/// O(log n + k) incremental placement bound.
static PROFILE_POINTS_SCANNED: LatencyHistogram =
    LatencyHistogram::new("batchsim.profile.points_scanned");
/// High-watermark of availability-profile change points.
static PROFILE_POINTS_PEAK: Gauge = Gauge::new("batchsim.profile.points");
/// Conservative passes that re-placed every reservation (invalidation).
static PROFILE_REPLACEMENTS: Counter = Counter::new("batchsim.profile.replacements");
/// Conservative passes served entirely from held reservations.
static PROFILE_FAST_PASSES: Counter = Counter::new("batchsim.profile.incremental_passes");
/// Predictive-backfill passes run (each refits the per-queue predictors).
static PREDICTIVE_PASSES: Counter = Counter::new("batchsim.predictive.passes");
/// Waiting jobs per predictive pass whose predicted delay bound exceeded
/// their remaining wait budget — at risk of an SLO miss.
static PREDICTIVE_AT_RISK: LatencyHistogram =
    LatencyHistogram::new("batchsim.predictive.at_risk");

/// Event kinds, ordered so completions process before arrivals at ties
/// (freed processors are visible to jobs arriving at the same instant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A running job finished; payload is the job id.
    Finish(u64),
    /// A job arrived; payload is its index in the job list.
    Arrive(usize),
}

/// A space-shared machine simulation.
#[derive(Debug, Clone)]
pub struct Simulation {
    machine: MachineConfig,
    policy: SchedulerPolicy,
    schedule: PolicySchedule,
    backfill: BackfillConfig,
    deadline: DeadlineConfig,
}

/// Per-job start bookkeeping returned alongside traces for invariant tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartRecord {
    /// The job that started.
    pub job_id: u64,
    /// When it started.
    pub start: u64,
}

/// The admission verdict recorded for every arrival — under
/// [`SchedulerPolicy::PredictiveBackfill`] the served per-queue delay bound
/// is compared against the job's full wait budget at the instant it
/// arrives; under every other discipline arrivals are admitted
/// unconditionally. Advisory: no job is dropped (every trace stays
/// complete and policies stay comparable), but the sequence is part of the
/// byte-level schedule the differential tests replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmitRecord {
    /// The arriving job.
    pub job_id: u64,
    /// Whether the served bound fit the job's wait budget (or no bound was
    /// being served yet — warmup holds nothing against a job).
    pub admitted: bool,
}

impl Simulation {
    /// Creates a simulation with a fixed scheduling policy and no
    /// administrator changes.
    pub fn new(machine: MachineConfig, policy: SchedulerPolicy) -> Self {
        Self {
            machine,
            policy,
            schedule: PolicySchedule::new(),
            backfill: BackfillConfig::default(),
            deadline: DeadlineConfig::default(),
        }
    }

    /// Overrides the site-wide wait-budget rule consulted by
    /// [`SchedulerPolicy::PredictiveBackfill`] and the admission records.
    pub fn with_deadlines(mut self, deadline: DeadlineConfig) -> Self {
        self.deadline = deadline;
        self
    }

    /// Installs an administrator policy-change schedule.
    pub fn with_schedule(mut self, schedule: PolicySchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Overrides the backfill tuning knobs.
    pub fn with_backfill(mut self, backfill: BackfillConfig) -> Self {
        self.backfill = backfill;
        self
    }

    /// Caps reservations per conservative pass (`None` = unbounded, the
    /// default).
    pub fn with_reservation_depth(mut self, depth: Option<usize>) -> Self {
        self.backfill.reservation_depth = depth;
        self
    }

    /// Selects the conservative-backfill implementation (the naive rebuild
    /// engine is the differential oracle and seed-era bench baseline).
    pub fn with_conservative_engine(mut self, engine: ConservativeEngine) -> Self {
        self.backfill.engine = engine;
        self
    }

    /// Generates a workload and runs it; returns one trace per queue.
    pub fn run(&mut self, workload: &WorkloadConfig) -> Vec<Trace> {
        let jobs = workload::generate(workload, &self.machine);
        self.run_jobs(jobs)
    }

    /// Runs an explicit job list; returns one trace per queue.
    ///
    /// # Panics
    ///
    /// Panics if any job requests more processors than the machine has
    /// (such a job could never start) or references an unknown queue.
    pub fn run_jobs(&mut self, jobs: Vec<SimJob>) -> Vec<Trace> {
        self.run_jobs_recorded(jobs).0
    }

    /// Runs an explicit job list, additionally returning every start in
    /// the order the scheduler made it — the byte-level schedule the
    /// differential tests compare.
    ///
    /// # Panics
    ///
    /// Panics as [`Simulation::run_jobs`].
    pub fn run_jobs_recorded(&mut self, jobs: Vec<SimJob>) -> (Vec<Trace>, Vec<StartRecord>) {
        let (traces, starts, _) = self.run_jobs_admitted(jobs);
        (traces, starts)
    }

    /// Runs an explicit job list, additionally returning the per-arrival
    /// admission verdicts (meaningful under
    /// [`SchedulerPolicy::PredictiveBackfill`]; unconditional `admitted`
    /// elsewhere).
    ///
    /// # Panics
    ///
    /// Panics as [`Simulation::run_jobs`].
    pub fn run_jobs_admitted(
        &mut self,
        jobs: Vec<SimJob>,
    ) -> (Vec<Trace>, Vec<StartRecord>, Vec<AdmitRecord>) {
        for j in &jobs {
            assert!(
                j.procs >= 1 && j.procs <= self.machine.procs,
                "job {} requests {} procs on a {}-proc machine",
                j.id,
                j.procs,
                self.machine.procs
            );
            assert!(
                j.queue < self.machine.queues.len(),
                "job {} references unknown queue {}",
                j.id,
                j.queue
            );
        }

        let mut traces: Vec<Trace> = self
            .machine
            .queues
            .iter()
            .map(|q| Trace::new("batchsim", q.name.clone()))
            .collect();
        let mut starts: Vec<StartRecord> = Vec::new();
        let mut admits: Vec<AdmitRecord> = Vec::new();
        // One BMBP per queue, fed every started job's actual wait — the
        // same observation stream qdelay-serve would see — regardless of
        // the discipline in force, so a mid-trace switch to predictive
        // backfill starts from a warmed history.
        let mut predictors: Vec<Bmbp> = self
            .machine
            .queues
            .iter()
            .map(|_| Bmbp::with_defaults())
            .collect();

        let mut cluster = Cluster::new(self.machine.procs);
        let mut priority = PriorityState::from_queues(
            self.machine.queues.iter().map(|q| q.priority).collect(),
        );
        let mut policy = self.policy;
        let mut schedule = self.schedule.clone();
        let mut cons = ConservativeState::new(self.machine.procs);

        // (time, kind) min-heap; kind ordering puts finishes first at ties.
        let mut events: BinaryHeap<Reverse<(u64, EventKind)>> = BinaryHeap::new();
        for (idx, j) in jobs.iter().enumerate() {
            events.push(Reverse((j.submit, EventKind::Arrive(idx))));
        }
        // Kept sorted by the priority sort key at all times; arrivals
        // binary-search their slot and administrator actions re-sort.
        let mut waiting: Vec<SimJob> = Vec::new();

        while let Some(Reverse((now, kind))) = events.pop() {
            let due_changes = schedule.drain_due(now);
            if !due_changes.is_empty() {
                for due in due_changes {
                    if let PolicyChange::SetPolicy(p) = due.change {
                        policy = p;
                    }
                    priority.apply(&due.change);
                }
                // The order the engine schedules by may have shifted under
                // the held reservations: restore the sort and re-place.
                waiting.sort_by_key(|j| priority.sort_key(j.queue, j.procs, j.submit, j.id));
                cons.dirty = true;
            }
            match kind {
                EventKind::Finish(id) => {
                    cluster.release(id);
                    if cons.valid && cons.profile.on_release(id, now) {
                        // Early or late versus the profile's belief: every
                        // held reservation assumed the old release time.
                        cons.dirty = true;
                    }
                }
                EventKind::Arrive(idx) => {
                    let j = jobs[idx];
                    let admitted = if policy == SchedulerPolicy::PredictiveBackfill {
                        match predictors[j.queue].current_bound().value() {
                            Some(b) => b <= self.deadline.wait_budget(j.estimate) as f64,
                            None => true,
                        }
                    } else {
                        true
                    };
                    admits.push(AdmitRecord { job_id: j.id, admitted });
                    let key = priority.sort_key(j.queue, j.procs, j.submit, j.id);
                    let pos = waiting.partition_point(|w| {
                        priority.sort_key(w.queue, w.procs, w.submit, w.id) <= key
                    });
                    if pos != waiting.len() {
                        // The arrival outranks an already-reserved job; the
                        // oracle would have placed it first.
                        cons.dirty = true;
                    }
                    waiting.insert(pos, j);
                }
            }
            QUEUE_DEPTH_PEAK.set_max(waiting.len() as u64);
            let started = schedule_pass(
                policy,
                &priority,
                &mut cluster,
                &mut waiting,
                now,
                &mut cons,
                self.backfill,
                &mut predictors,
                self.deadline,
            );
            for job in started {
                let wait = now - job.submit;
                // Close the predictor loop exactly as the serve registry
                // does: outcome feedback against the bound being served
                // (driving change-point detection), then the observation.
                if let Some(b) = predictors[job.queue].current_bound().value() {
                    predictors[job.queue].record_outcome(b, wait as f64);
                }
                predictors[job.queue].observe(wait as f64);
                events.push(Reverse((now + job.runtime, EventKind::Finish(job.id))));
                starts.push(StartRecord { job_id: job.id, start: now });
                traces[job.queue].push(JobRecord {
                    submit: job.submit,
                    wait_secs: wait as f64,
                    procs: job.procs,
                    run_secs: job.runtime as f64,
                });
            }
        }
        assert!(
            waiting.is_empty(),
            "{} jobs never started (scheduler stall)",
            waiting.len()
        );
        for t in &mut traces {
            t.sort_by_submit();
        }
        (traces, starts, admits)
    }
}

/// Persistent conservative-backfill state carried across events.
#[derive(Debug)]
struct ConservativeState {
    profile: AvailabilityProfile,
    /// Whether the profile mirrors the cluster (goes false whenever a
    /// non-conservative pass runs; the next conservative pass re-syncs).
    valid: bool,
    /// Whether held reservations must be re-placed before trusting them.
    dirty: bool,
    /// Whether any waiting job could not be placed (saturated "forever"
    /// reservations); forces re-placement until it drains.
    unplaced: bool,
}

impl ConservativeState {
    fn new(capacity: u32) -> Self {
        Self {
            profile: AvailabilityProfile::new(capacity),
            valid: false,
            dirty: true,
            unplaced: false,
        }
    }
}

/// Runs one scheduling pass, returning the jobs that started now.
/// `waiting` is sorted by the engine's priority key on entry and exit.
#[allow(clippy::too_many_arguments)]
fn schedule_pass(
    policy: SchedulerPolicy,
    priority: &PriorityState,
    cluster: &mut Cluster,
    waiting: &mut Vec<SimJob>,
    now: u64,
    cons: &mut ConservativeState,
    backfill: BackfillConfig,
    predictors: &mut [Bmbp],
    deadline: DeadlineConfig,
) -> Vec<SimJob> {
    match policy {
        SchedulerPolicy::Fcfs => {
            cons.valid = false;
            fcfs_pass(cluster, waiting, now)
        }
        SchedulerPolicy::EasyBackfill => {
            cons.valid = false;
            easy_pass(cluster, waiting, now)
        }
        SchedulerPolicy::PredictiveBackfill => {
            cons.valid = false;
            predictive_pass(cluster, waiting, now, priority, predictors, deadline)
        }
        SchedulerPolicy::ConservativeBackfill => match backfill.engine {
            ConservativeEngine::NaiveRebuild => {
                cons.valid = false;
                conservative_pass_naive(cluster, waiting, now, backfill.reservation_depth)
            }
            ConservativeEngine::Incremental => {
                conservative_pass_incremental(cluster, waiting, now, cons, backfill.reservation_depth)
            }
        },
    }
}

/// Strict in-order starts; the head blocks.
fn fcfs_pass(cluster: &mut Cluster, waiting: &mut Vec<SimJob>, now: u64) -> Vec<SimJob> {
    let mut started = Vec::new();
    while let Some(head) = waiting.first().copied() {
        if !cluster.fits(head.procs) {
            break;
        }
        cluster.allocate(head.id, head.procs, now + head.estimate);
        waiting.remove(0);
        started.push(head);
    }
    started
}

/// EASY backfill: start the in-order prefix; when the head blocks, give it
/// a reservation and let later jobs start iff they do not delay it.
fn easy_pass(cluster: &mut Cluster, waiting: &mut Vec<SimJob>, now: u64) -> Vec<SimJob> {
    let mut started = fcfs_pass(cluster, waiting, now);
    if waiting.is_empty() {
        return started;
    }
    // Head is blocked: compute its reservation from estimated releases.
    loop {
        let head = waiting[0];
        let (shadow, free_at_shadow) = cluster.earliest_fit(head.procs, now);
        if shadow == u64::MAX {
            break; // cannot reserve (should not happen within capacity)
        }
        // Processors spare at the shadow time even after the head starts.
        let extra = free_at_shadow - head.procs;
        let mut any = false;
        let mut i = 1;
        while i < waiting.len() {
            let cand = waiting[i];
            let fits_now = cluster.fits(cand.procs);
            let ends_before_shadow = now + cand.estimate <= shadow;
            let within_extra = cand.procs <= extra;
            if fits_now && (ends_before_shadow || within_extra) {
                cluster.allocate(cand.id, cand.procs, now + cand.estimate);
                started.push(cand);
                waiting.remove(i);
                any = true;
                // Shadow/extra may have changed; restart the scan.
                break;
            }
            i += 1;
        }
        if !any {
            break;
        }
        // A backfill may have freed the head indirectly only via fits (it
        // cannot), but extra/shadow need recomputation for further
        // candidates; also the head itself can never start here (it did not
        // fit and backfills only consume processors).
        if cluster.fits(waiting[0].procs) {
            // Defensive: if it somehow fits now, hand back to FCFS.
            let mut more = fcfs_pass(cluster, waiting, now);
            started.append(&mut more);
            if waiting.is_empty() {
                break;
            }
        }
    }
    started
}

/// Prediction-driven backfill: refit the per-queue predictors, rank the
/// waiting queue by *deadline slack* — remaining wait budget minus the
/// served delay bound, most at-risk first — and run EASY backfill over that
/// order (the most urgent job holds the shadow reservation). The engine's
/// priority order is restored before returning so arrival binary-search
/// stays valid. Every quantity in the key is integral (budgets are whole
/// seconds, bounds are ceiled), so the ranking — and therefore the whole
/// schedule — is a pure function of the job list and policy schedule.
fn predictive_pass(
    cluster: &mut Cluster,
    waiting: &mut Vec<SimJob>,
    now: u64,
    priority: &PriorityState,
    predictors: &mut [Bmbp],
    deadline: DeadlineConfig,
) -> Vec<SimJob> {
    PREDICTIVE_PASSES.incr();
    for p in predictors.iter_mut() {
        p.refit();
    }
    let bounds: Vec<Option<f64>> = predictors
        .iter()
        .map(|p| p.current_bound().value())
        .collect();
    // A job whose budget has already elapsed misses its SLO no matter
    // what the scheduler does now; it yields to every job still savable
    // (the standard overload move — shed the lost, save the marginal).
    // Among savable jobs, smallest slack goes first.
    let key_of = |j: &SimJob| -> (bool, i128) {
        let budget = deadline.wait_budget(j.estimate);
        let waited = now - j.submit;
        let rem = budget.saturating_sub(waited) as i128;
        // No bound during warmup degrades to earliest-deadline-first on
        // the remaining budget alone.
        let bound = bounds[j.queue].map_or(0, |b| b.ceil() as i128);
        (waited > budget, rem - bound)
    };
    let at_risk = waiting.iter().filter(|j| key_of(j).1 < 0).count();
    PREDICTIVE_AT_RISK.record(at_risk as u64);
    waiting.sort_by_key(|j| (key_of(j), priority.sort_key(j.queue, j.procs, j.submit, j.id)));
    let started = easy_pass(cluster, waiting, now);
    waiting.sort_by_key(|j| priority.sort_key(j.queue, j.procs, j.submit, j.id));
    started
}

/// The incremental conservative pass: re-sync/advance the profile, then
/// either serve the event from held reservations (fast path) or re-place
/// everything (the oracle-equivalent slow path).
fn conservative_pass_incremental(
    cluster: &mut Cluster,
    waiting: &mut Vec<SimJob>,
    now: u64,
    cons: &mut ConservativeState,
    depth: Option<usize>,
) -> Vec<SimJob> {
    if !cons.valid {
        cons.profile.sync(cluster, now);
        cons.valid = true;
        cons.dirty = true;
    }
    if cons.profile.advance(now) {
        // An overdue release point moved: reservations assumed it.
        cons.dirty = true;
    }
    if depth.is_some() {
        // Legacy capped mode: the cap truncates each pass, so which jobs
        // hold reservations depends on the pass — re-place every event
        // exactly like the capped oracle.
        cons.dirty = true;
    }
    let started = if cons.dirty || cons.unplaced {
        PROFILE_REPLACEMENTS.incr();
        conservative_replace_all(cluster, waiting, now, cons, depth)
    } else {
        PROFILE_FAST_PASSES.incr();
        conservative_fast_pass(cluster, waiting, now, cons)
    };
    PROFILE_POINTS_PEAK.set_max(cons.profile.len() as u64);
    debug_assert_eq!(cons.profile.free_now(), cluster.free());
    started
}

/// Fast path: every waiting job's reservation is still exactly what a full
/// re-placement would produce (nothing deviated since it was computed), so
/// the pass only starts due reservations and places new arrivals.
fn conservative_fast_pass(
    cluster: &mut Cluster,
    waiting: &mut Vec<SimJob>,
    now: u64,
    cons: &mut ConservativeState,
) -> Vec<SimJob> {
    let mut started = Vec::new();
    let mut considered = 0u64;
    // Start jobs whose reservation has come due, in priority order.
    let due = cons.profile.reservations_due(now);
    if !due.is_empty() {
        let mut remaining = due.len();
        let mut i = 0;
        while i < waiting.len() && remaining > 0 {
            let job = waiting[i];
            if due.contains(&job.id) {
                debug_assert_eq!(
                    cons.profile.reservation(job.id).map(|r| r.start),
                    Some(now),
                    "a clean reservation comes due exactly at an event"
                );
                considered += 1;
                remaining -= 1;
                cons.profile.unreserve(job.id);
                cons.profile.on_allocate(job.id, job.procs, now + job.estimate, now);
                cluster.allocate(job.id, job.procs, now + job.estimate);
                started.push(job);
                waiting.remove(i);
            } else {
                i += 1;
            }
        }
        debug_assert_eq!(remaining, 0, "due reservations must belong to waiting jobs");
    }
    // Place new arrivals — the unreserved suffix (they sorted last, or the
    // pass would have been dirty).
    let mut k = waiting.len();
    while k > 0 && cons.profile.reservation(waiting[k - 1].id).is_none() {
        k -= 1;
    }
    let newcomers: Vec<SimJob> = waiting[k..].to_vec();
    for job in newcomers {
        considered += 1;
        let duration = job.estimate.max(1);
        let (t, scanned) = cons.profile.earliest_fit(job.procs, duration, now);
        PROFILE_POINTS_SCANNED.record(scanned);
        if t == u64::MAX {
            cons.unplaced = true;
        } else if t == now {
            cons.profile.on_allocate(job.id, job.procs, now + job.estimate, now);
            cluster.allocate(job.id, job.procs, now + job.estimate);
            let idx = waiting
                .iter()
                .rposition(|w| w.id == job.id)
                .expect("newcomer is in the waiting queue");
            waiting.remove(idx);
            started.push(job);
        } else {
            cons.profile.reserve(job.id, job.procs, t, duration);
        }
    }
    BACKFILL_PASS_CONSIDERED.record(considered);
    started
}

/// Slow path: drop every reservation and re-place in priority order —
/// exactly the greedy placement the naive oracle computes each event, but
/// against the persistent profile (O(log n) edits, O(log n + k) scans).
fn conservative_replace_all(
    cluster: &mut Cluster,
    waiting: &mut Vec<SimJob>,
    now: u64,
    cons: &mut ConservativeState,
    depth: Option<usize>,
) -> Vec<SimJob> {
    cons.profile.clear_reservations();
    cons.dirty = false;
    cons.unplaced = false;
    let cap = depth.unwrap_or(usize::MAX);
    let mut started = Vec::new();
    let mut i = 0;
    let mut considered = 0usize;
    while i < waiting.len() && considered < cap {
        considered += 1;
        let job = waiting[i];
        // Estimates of zero still occupy the machine momentarily.
        let duration = job.estimate.max(1);
        let (t, scanned) = cons.profile.earliest_fit(job.procs, duration, now);
        PROFILE_POINTS_SCANNED.record(scanned);
        if t == u64::MAX {
            cons.unplaced = true;
            i += 1;
            continue;
        }
        if t == now {
            cons.profile.on_allocate(job.id, job.procs, now + job.estimate, now);
            cluster.allocate(job.id, job.procs, now + job.estimate);
            started.push(job);
            waiting.remove(i);
        } else {
            cons.profile.reserve(job.id, job.procs, t, duration);
            i += 1;
        }
    }
    BACKFILL_PASS_CONSIDERED.record(considered as u64);
    if considered == cap && i < waiting.len() {
        BACKFILL_CAP_HITS.incr();
    }
    started
}

/// An availability profile rebuilt from scratch per pass — the seed
/// engine's representation, retained as the differential oracle.
#[derive(Debug, Clone)]
struct RebuildProfile {
    /// (time, free_from_this_time_on), strictly increasing times.
    points: Vec<(u64, u32)>,
}

impl RebuildProfile {
    fn new(cluster: &Cluster, now: u64) -> Self {
        let mut points = vec![(now, cluster.free())];
        let mut free = cluster.free();
        for (t, p) in cluster.estimated_releases() {
            free += p;
            // A release estimated at or before `now` belongs to a job that
            // is still running (its Finish event has not fired — e.g. a
            // same-instant finish later in the event queue, or a true
            // runtime exceeding the estimate). Its processors must not be
            // counted free at the present instant, or a start at `now`
            // could exceed the machine's real free count.
            let t = t.max(now + 1);
            match points.iter_mut().find(|(pt, _)| *pt == t) {
                Some(entry) => entry.1 = free,
                None => points.push((t, free)),
            }
        }
        points.sort_unstable();
        Self { points }
    }

    /// Free processors at time `t`.
    fn free_at(&self, t: u64) -> u32 {
        let idx = self.points.partition_point(|(pt, _)| *pt <= t);
        if idx == 0 {
            self.points[0].1
        } else {
            self.points[idx - 1].1
        }
    }

    /// Earliest `t >= from` such that `procs` are free throughout
    /// `[t, t + duration)`.
    fn earliest_window(&self, procs: u32, duration: u64, from: u64) -> u64 {
        let mut candidates: Vec<u64> = self
            .points
            .iter()
            .map(|&(t, _)| t.max(from))
            .collect();
        candidates.push(from);
        candidates.sort_unstable();
        candidates.dedup();
        'outer: for &start in &candidates {
            if self.free_at(start) < procs {
                continue;
            }
            let end = start.saturating_add(duration);
            for &(t, free) in &self.points {
                if t > start && t < end && free < procs {
                    continue 'outer;
                }
            }
            return start;
        }
        u64::MAX
    }

    /// Reserves `procs` processors over `[start, start + duration)`.
    fn reserve(&mut self, procs: u32, start: u64, duration: u64) {
        let end = start.saturating_add(duration);
        let free_at_start = self.free_at(start);
        let free_at_end = self.free_at(end);
        if !self.points.iter().any(|(t, _)| *t == start) {
            self.points.push((start, free_at_start));
        }
        if end != u64::MAX && !self.points.iter().any(|(t, _)| *t == end) {
            self.points.push((end, free_at_end));
        }
        self.points.sort_unstable();
        for p in &mut self.points {
            if p.0 >= start && p.0 < end {
                debug_assert!(p.1 >= procs, "conservative profile underflow");
                p.1 -= procs;
            }
        }
    }
}

/// The seed-era conservative pass: rebuild the profile, walk jobs in
/// priority order, give each the earliest reservation compatible with all
/// earlier reservations, start the ones whose reservation is *now*.
fn conservative_pass_naive(
    cluster: &mut Cluster,
    waiting: &mut Vec<SimJob>,
    now: u64,
    depth: Option<usize>,
) -> Vec<SimJob> {
    let cap = depth.unwrap_or(usize::MAX);
    let mut profile = RebuildProfile::new(cluster, now);
    let mut started = Vec::new();
    let mut i = 0;
    let mut considered = 0;
    while i < waiting.len() && considered < cap {
        considered += 1;
        let job = waiting[i];
        // Estimates of zero still occupy the machine momentarily.
        let duration = job.estimate.max(1);
        let t = profile.earliest_window(job.procs, duration, now);
        if t == u64::MAX {
            i += 1;
            continue;
        }
        profile.reserve(job.procs, t, duration);
        if t == now {
            cluster.allocate(job.id, job.procs, now + job.estimate);
            started.push(job);
            waiting.remove(i);
        } else {
            i += 1;
        }
    }
    BACKFILL_PASS_CONSIDERED.record(considered as u64);
    if considered == cap && i < waiting.len() {
        BACKFILL_CAP_HITS.incr();
    }
    started
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueueSpec;

    fn machine(procs: u32) -> MachineConfig {
        MachineConfig::single_queue(procs)
    }

    fn job(id: u64, submit: u64, procs: u32, runtime: u64) -> SimJob {
        SimJob {
            id,
            submit,
            procs,
            runtime,
            estimate: runtime,
            queue: 0,
        }
    }

    fn waits(traces: &[Trace]) -> Vec<(u64, f64)> {
        let mut v: Vec<(u64, f64)> = traces[0]
            .iter()
            .map(|j| (j.submit, j.wait_secs))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    #[test]
    fn plentiful_capacity_means_zero_waits() {
        let mut sim = Simulation::new(machine(1024), SchedulerPolicy::Fcfs);
        let jobs: Vec<SimJob> = (0..50).map(|i| job(i, i * 10, 4, 500)).collect();
        let traces = sim.run_jobs(jobs);
        assert_eq!(traces[0].len(), 50);
        assert!(traces[0].iter().all(|j| j.wait_secs == 0.0));
    }

    #[test]
    fn serial_machine_queues_in_order() {
        let mut sim = Simulation::new(machine(1), SchedulerPolicy::Fcfs);
        let jobs: Vec<SimJob> = (0..4).map(|i| job(i, 0, 1, 100)).collect();
        let traces = sim.run_jobs(jobs);
        let mut ws: Vec<f64> = traces[0].iter().map(|j| j.wait_secs).collect();
        ws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(ws, vec![0.0, 100.0, 200.0, 300.0]);
    }

    #[test]
    fn fcfs_head_blocks_small_jobs() {
        // 10 procs. A(8 procs, 1000 s) runs; B needs 10 (blocked);
        // C needs 2 and would fit, but FCFS cannot skip B.
        let mut sim = Simulation::new(machine(10), SchedulerPolicy::Fcfs);
        let jobs = vec![
            job(0, 0, 8, 1000),
            job(1, 10, 10, 100),
            job(2, 20, 2, 100),
        ];
        let traces = sim.run_jobs(jobs);
        let w = waits(&traces);
        assert_eq!(w[0], (0, 0.0));
        assert_eq!(w[1], (10, 990.0)); // B starts when A ends
        assert_eq!(w[2], (20, 1080.0)); // C starts when B ends
    }

    #[test]
    fn easy_backfills_safe_jobs_only() {
        // Same setup: EASY lets C (est 100 <= shadow) start immediately, but
        // D (est 5000, crosses the shadow, procs > extra) must wait.
        let mut sim = Simulation::new(machine(10), SchedulerPolicy::EasyBackfill);
        let jobs = vec![
            job(0, 0, 8, 1000),
            job(1, 10, 10, 100),  // head; shadow = 1000, extra = 0
            job(2, 20, 2, 100),   // safe backfill
            job(3, 30, 2, 5000),  // would delay the head
        ];
        let traces = sim.run_jobs(jobs);
        let w = waits(&traces);
        assert_eq!(w[1].1, 990.0, "head keeps its reservation");
        assert_eq!(w[2].1, 0.0, "short job backfills instantly");
        assert!(w[3].1 >= 1070.0, "long job must not jump the head");
    }

    #[test]
    fn easy_head_never_delayed_versus_fcfs() {
        // The head's start under EASY must equal its start under FCFS for
        // identical workloads (backfill is only allowed when harmless).
        let jobs: Vec<SimJob> = (0..60)
            .map(|i| {
                job(
                    i,
                    i * 50,
                    1 + (i as u32 * 7) % 10,
                    200 + (i * 131) % 2000,
                )
            })
            .collect();
        let t_fcfs = Simulation::new(machine(10), SchedulerPolicy::Fcfs).run_jobs(jobs.clone());
        let t_easy =
            Simulation::new(machine(10), SchedulerPolicy::EasyBackfill).run_jobs(jobs.clone());
        // Average wait under EASY is no worse than FCFS on this workload.
        let avg = |ts: &[Trace]| {
            ts[0].waits().iter().sum::<f64>() / ts[0].len() as f64
        };
        assert!(avg(&t_easy) <= avg(&t_fcfs) + 1e-9);
        assert_eq!(t_easy[0].len(), jobs.len());
    }

    #[test]
    fn conservative_starts_everyone_and_respects_capacity() {
        let jobs: Vec<SimJob> = (0..80)
            .map(|i| job(i, i * 20, 1 + (i as u32 * 13) % 16, 100 + (i * 97) % 3000))
            .collect();
        let mut sim = Simulation::new(machine(16), SchedulerPolicy::ConservativeBackfill);
        let traces = sim.run_jobs(jobs.clone());
        assert_eq!(traces[0].len(), jobs.len());
        assert!(traces[0].iter().all(|j| j.wait_secs >= 0.0));
    }

    #[test]
    fn conservative_backfills_trivially_safe_job() {
        let mut sim = Simulation::new(machine(10), SchedulerPolicy::ConservativeBackfill);
        let jobs = vec![
            job(0, 0, 8, 1000),
            job(1, 10, 10, 100), // reserved at t=1000
            job(2, 20, 2, 100),  // fits in the hole before t=1000
        ];
        let traces = sim.run_jobs(jobs);
        let w = waits(&traces);
        assert_eq!(w[2].1, 0.0);
        assert_eq!(w[1].1, 990.0);
    }

    #[test]
    fn conservative_same_instant_finishes_do_not_overallocate() {
        // A (6 procs) and B (4 procs) both finish at t=100. When Finish(A)
        // pops, B is still allocated with estimated release exactly `now`;
        // the availability profile must not count B's processors as free at
        // the present instant, or C (10 procs) would be started into a
        // cluster with only 6 free and panic the allocator.
        let mut sim = Simulation::new(machine(10), SchedulerPolicy::ConservativeBackfill);
        let jobs = vec![
            job(0, 0, 6, 100),
            job(1, 0, 4, 100),
            job(2, 10, 10, 50),
        ];
        let traces = sim.run_jobs(jobs);
        let w = waits(&traces);
        assert_eq!(w[2], (10, 90.0), "C starts at t=100 once both finish");
    }

    /// Runs one job list through both conservative engines and asserts
    /// byte-identical schedules.
    fn assert_engines_agree(procs: u32, jobs: Vec<SimJob>) {
        let (t_inc, s_inc) = Simulation::new(machine(procs), SchedulerPolicy::ConservativeBackfill)
            .run_jobs_recorded(jobs.clone());
        let (t_naive, s_naive) =
            Simulation::new(machine(procs), SchedulerPolicy::ConservativeBackfill)
                .with_conservative_engine(ConservativeEngine::NaiveRebuild)
                .run_jobs_recorded(jobs);
        assert_eq!(s_inc, s_naive, "start schedules diverge");
        assert_eq!(waits(&t_inc), waits(&t_naive), "wait traces diverge");
    }

    #[test]
    fn deep_queue_matches_oracle_with_cap_off() {
        // 160 jobs burst onto an 8-proc machine: the queue runs far deeper
        // than the old 128-job cap, and with the cap off (the default) the
        // incremental engine must match the uncapped oracle byte for byte.
        let jobs: Vec<SimJob> = (0..160)
            .map(|i| job(i, (i % 4) as u64, 1 + (i as u32 * 5) % 8, 50 + (i * 37) % 400))
            .collect();
        assert_engines_agree(8, jobs);
    }

    #[test]
    fn misestimated_runtimes_match_oracle() {
        // Early and late completions (estimate != runtime) exercise every
        // invalidation rule; schedules must still match the oracle exactly.
        let jobs: Vec<SimJob> = (0..120)
            .map(|i| {
                let runtime = 50 + (i * 61) % 500;
                let estimate = match i % 3 {
                    0 => runtime,                 // on time
                    1 => runtime * 2,             // finishes early
                    _ => (runtime / 2).max(1),    // overruns its estimate
                };
                SimJob {
                    id: i,
                    submit: i * 3,
                    procs: 1 + (i as u32 * 7) % 8,
                    runtime,
                    estimate,
                    queue: 0,
                }
            })
            .collect();
        assert_engines_agree(8, jobs);
    }

    #[test]
    fn ten_k_job_overload_completes_with_bounded_scans() {
        // A 10k-job overload on a serial machine — queue depth near 10k,
        // 78x the old reservation cap. With on-time completions the
        // incremental engine stays on the fast path: back-to-back
        // reservations coalesce, so each earliest-fit scan touches O(1)
        // change points no matter how deep the queue gets (the seed engine
        // re-placed all ~10k reservations per event here).
        let n: u64 = 10_000;
        let jobs: Vec<SimJob> = (0..n).map(|i| job(i, i, 1, 40 + (i % 97))).collect();
        let mut sim = Simulation::new(machine(1), SchedulerPolicy::ConservativeBackfill);
        let traces = sim.run_jobs(jobs);
        assert_eq!(traces[0].len(), n as usize);
        let snap = qdelay_telemetry::snapshot();
        let peak_depth = snap.gauge("batchsim.queue_depth_peak").unwrap_or(0);
        assert!(peak_depth > 5_000, "queue must run deep, got {peak_depth}");
        if let Some(h) = snap.histogram("batchsim.profile.points_scanned") {
            // Other tests share the registry; the bound holds for every
            // incremental scan in the process, this run included.
            assert!(
                h.max <= 64_000,
                "profile scans must stay bounded, saw max {}",
                h.max
            );
        } else {
            panic!("points_scanned histogram must be populated");
        }
    }

    #[test]
    fn reservation_depth_knob_restores_capped_behavior() {
        // Legacy capped mode: a finite depth truncates each pass and the
        // deprecated cap-hit counter advances; both engines agree on the
        // truncated schedule too.
        let jobs: Vec<SimJob> = (0..60).map(|i| job(i, 0, 1, 100)).collect();
        let before = qdelay_telemetry::snapshot()
            .counter("batchsim.backfill.cap_hits")
            .unwrap_or(0);
        let (_, s_inc) = Simulation::new(machine(1), SchedulerPolicy::ConservativeBackfill)
            .with_reservation_depth(Some(16))
            .run_jobs_recorded(jobs.clone());
        let (_, s_naive) = Simulation::new(machine(1), SchedulerPolicy::ConservativeBackfill)
            .with_reservation_depth(Some(16))
            .with_conservative_engine(ConservativeEngine::NaiveRebuild)
            .run_jobs_recorded(jobs);
        assert_eq!(s_inc, s_naive, "capped engines diverge");
        let after = qdelay_telemetry::snapshot()
            .counter("batchsim.backfill.cap_hits")
            .unwrap_or(0);
        assert!(after > before, "a 60-deep queue must hit a 16-job cap");
    }

    #[test]
    fn queue_priorities_order_starts() {
        let m = MachineConfig {
            procs: 4,
            queues: vec![QueueSpec::new("high", 10), QueueSpec::new("low", 1)],
        };
        // Machine busy until t=100; then one slot: high-queue job must win
        // even though the low-queue job arrived first.
        let blocker = job(0, 0, 4, 100);
        let low = SimJob { id: 1, submit: 1, procs: 4, runtime: 50, estimate: 50, queue: 1 };
        let high = SimJob { id: 2, submit: 2, procs: 4, runtime: 50, estimate: 50, queue: 0 };
        let mut sim = Simulation::new(m, SchedulerPolicy::Fcfs);
        let traces = sim.run_jobs(vec![blocker, low, high]);
        // The blocker also lives in queue 0; find the contended job by its
        // submit time.
        let high_wait = traces[0]
            .iter()
            .find(|j| j.submit == 2)
            .expect("high job recorded")
            .wait_secs;
        let low_wait = traces[1].jobs()[0].wait_secs;
        assert_eq!(high_wait, 98.0); // starts at 100
        assert_eq!(low_wait, 149.0); // starts at 150, after high
    }

    #[test]
    fn large_job_boost_flips_favoritism() {
        // The Figure 2 mechanism: with a large-job boost installed, a
        // 64-proc job overtakes earlier 2-proc jobs in the same queue.
        let mut schedule = PolicySchedule::new();
        schedule.add(
            0,
            PolicyChange::SetLargeJobBoost {
                min_procs: 64,
                boost: 1000,
            },
        );
        let m = machine(64);
        let blocker = job(0, 0, 64, 500);
        let smalls: Vec<SimJob> = (1..=3).map(|i| job(i, 10 * i, 2, 1000)).collect();
        let big = job(9, 40, 64, 100);
        let mut jobs = vec![blocker, big];
        jobs.extend(smalls);
        let mut sim =
            Simulation::new(m, SchedulerPolicy::Fcfs).with_schedule(schedule);
        let traces = sim.run_jobs(jobs);
        let by_id: std::collections::HashMap<u64, f64> = traces[0]
            .iter()
            .map(|j| (j.submit, j.wait_secs))
            .collect();
        // big (submit 40) starts at 500 (wait 460); smalls wait for it.
        assert_eq!(by_id[&40], 460.0);
        assert!(by_id[&10] >= 560.0);
    }

    #[test]
    #[should_panic(expected = "requests")]
    fn oversized_job_rejected() {
        let mut sim = Simulation::new(machine(8), SchedulerPolicy::Fcfs);
        sim.run_jobs(vec![job(0, 0, 9, 10)]);
    }

    /// Repeated overload waves on an 8-proc machine: each wave's arrivals
    /// outpace the machine several-fold, then a gap lets the queue drain —
    /// so waits observed in one wave inform admission in the next.
    fn waves(n_waves: u64, per_wave: u64, seed: u64) -> Vec<SimJob> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut jobs = Vec::new();
        for w in 0..n_waves {
            for j in 0..per_wave {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let procs = 1 + ((state >> 53) % 8) as u32;
                let runtime = 60 + ((state >> 17) % 1_201);
                jobs.push(SimJob {
                    id: w * per_wave + j,
                    submit: w * 20_000 + j * 10,
                    procs,
                    runtime,
                    estimate: runtime,
                    queue: 0,
                });
            }
        }
        jobs
    }

    #[test]
    fn predictive_schedule_is_replayable_and_records_every_arrival() {
        let jobs = waves(6, 40, 11);
        let run = || {
            Simulation::new(machine(8), SchedulerPolicy::PredictiveBackfill)
                .run_jobs_admitted(jobs.clone())
        };
        let (traces, starts, admits) = run();
        assert_eq!(traces[0].len(), jobs.len(), "every job runs");
        assert_eq!(starts.len(), jobs.len());
        assert_eq!(admits.len(), jobs.len(), "one verdict per arrival");
        let (_, starts2, admits2) = run();
        assert_eq!(starts, starts2, "schedule must replay bit-identically");
        assert_eq!(admits, admits2, "verdicts must replay bit-identically");
        // Deep overload saturates the predictor: some arrivals must see a
        // bound exceeding their budget.
        assert!(
            admits.iter().any(|a| !a.admitted),
            "an overloaded burst must reject some arrivals"
        );
    }

    #[test]
    fn non_predictive_policies_admit_unconditionally() {
        let jobs = waves(3, 30, 3);
        for policy in [
            SchedulerPolicy::Fcfs,
            SchedulerPolicy::EasyBackfill,
            SchedulerPolicy::ConservativeBackfill,
        ] {
            let (_, _, admits) =
                Simulation::new(machine(8), policy).run_jobs_admitted(jobs.clone());
            assert!(
                admits.iter().all(|a| a.admitted),
                "{policy:?} must not gate arrivals"
            );
        }
    }

    #[test]
    fn predictive_reduces_slo_misses_on_overloaded_burst() {
        let jobs = waves(6, 40, 7);
        let deadline = crate::DeadlineConfig::default();
        let miss = |policy| {
            let (_, starts, _) = Simulation::new(machine(8), policy)
                .with_deadlines(deadline)
                .run_jobs_admitted(jobs.clone());
            crate::metrics::slo_miss_rate(&jobs, &starts, deadline).unwrap()
        };
        let easy = miss(SchedulerPolicy::EasyBackfill);
        let predictive = miss(SchedulerPolicy::PredictiveBackfill);
        assert!(
            predictive < easy,
            "predictive must miss fewer SLOs: predictive {predictive} vs easy {easy}"
        );
    }

    #[test]
    fn mid_trace_policy_switch_applies() {
        // Switch from FCFS to EASY at t=50: a small job submitted after the
        // switch backfills; an identical one before the switch could not.
        let mut schedule = PolicySchedule::new();
        schedule.add(50, PolicyChange::SetPolicy(SchedulerPolicy::EasyBackfill));
        let jobs = vec![
            job(0, 0, 8, 1000),
            job(1, 10, 10, 100), // head, blocked
            job(2, 60, 2, 100),  // arrives after the switch: backfills
        ];
        let mut sim = Simulation::new(machine(10), SchedulerPolicy::Fcfs).with_schedule(schedule);
        let traces = sim.run_jobs(jobs);
        let w = waits(&traces);
        assert_eq!(w[2].1, 0.0, "post-switch small job backfills");
        assert_eq!(w[1].1, 990.0);
    }
}
