//! Machine-level metrics derived from simulation output.
//!
//! The space-sharing literature judges schedulers on utilization and
//! slowdown as well as raw waits; these helpers compute both from the
//! traces the engine emits, so experiments can verify a configuration is
//! contended-but-stable before measuring predictors on it.

use crate::engine::StartRecord;
use crate::{DeadlineConfig, SimJob};
use qdelay_trace::Trace;
use std::collections::HashMap;

/// Aggregate machine metrics over a set of per-queue traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineMetrics {
    /// Total jobs started.
    pub jobs: usize,
    /// Processor-seconds of work executed.
    pub work_proc_secs: f64,
    /// Machine utilization over the active span: work / (procs * span).
    pub utilization: f64,
    /// Mean wait, seconds.
    pub mean_wait: f64,
    /// Mean bounded slowdown, `max(1, (wait + run) / max(run, 10 s))` — the
    /// standard metric that keeps sub-second jobs from dominating.
    pub mean_bounded_slowdown: f64,
}

/// Computes [`MachineMetrics`] for traces produced on a `procs`-processor
/// machine.
///
/// The active span runs from the first submission to the last completion.
/// Returns `None` if the traces contain no jobs.
///
/// # Panics
///
/// Panics if `procs` is zero.
pub fn machine_metrics(traces: &[Trace], procs: u32) -> Option<MachineMetrics> {
    assert!(procs > 0, "procs must be positive");
    let mut jobs = 0usize;
    let mut work = 0.0f64;
    let mut wait_sum = 0.0f64;
    let mut slowdown_sum = 0.0f64;
    let mut first_submit = u64::MAX;
    let mut last_end = 0.0f64;
    for t in traces {
        for j in t.jobs() {
            jobs += 1;
            work += j.run_secs * f64::from(j.procs);
            wait_sum += j.wait_secs;
            let denom = j.run_secs.max(10.0);
            slowdown_sum += ((j.wait_secs + j.run_secs) / denom).max(1.0);
            first_submit = first_submit.min(j.submit);
            last_end = last_end.max(j.start_time() + j.run_secs);
        }
    }
    if jobs == 0 {
        return None;
    }
    let span = (last_end - first_submit as f64).max(1.0);
    Some(MachineMetrics {
        jobs,
        work_proc_secs: work,
        utilization: work / (f64::from(procs) * span),
        mean_wait: wait_sum / jobs as f64,
        mean_bounded_slowdown: slowdown_sum / jobs as f64,
    })
}

/// Fraction of started jobs whose queuing delay exceeded their wait budget
/// under the given deadline rule — the SLO-miss rate deadline-aware
/// scheduling is judged on. Computed from the exact integer start schedule
/// (not the float traces), so the rate is bit-stable across runs.
///
/// Returns `None` when no jobs started.
///
/// # Panics
///
/// Panics if a start record references a job missing from `jobs`.
pub fn slo_miss_rate(
    jobs: &[SimJob],
    starts: &[StartRecord],
    deadline: DeadlineConfig,
) -> Option<f64> {
    if starts.is_empty() {
        return None;
    }
    let by_id: HashMap<u64, &SimJob> = jobs.iter().map(|j| (j.id, j)).collect();
    let misses = starts
        .iter()
        .filter(|s| {
            let j = by_id
                .get(&s.job_id)
                .unwrap_or_else(|| panic!("start record for unknown job {}", s.job_id));
            s.start - j.submit > deadline.wait_budget(j.estimate)
        })
        .count();
    Some(misses as f64 / starts.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::policy::SchedulerPolicy;
    use crate::{MachineConfig, SimJob};

    fn job(id: u64, submit: u64, procs: u32, runtime: u64) -> SimJob {
        SimJob {
            id,
            submit,
            procs,
            runtime,
            estimate: runtime,
            queue: 0,
        }
    }

    #[test]
    fn fully_packed_machine_has_unit_utilization() {
        // Four 1-proc jobs back to back on a 1-proc machine.
        let mut sim = Simulation::new(MachineConfig::single_queue(1), SchedulerPolicy::Fcfs);
        let traces = sim.run_jobs((0..4).map(|i| job(i, 0, 1, 100)).collect());
        let m = machine_metrics(&traces, 1).unwrap();
        assert_eq!(m.jobs, 4);
        assert!((m.utilization - 1.0).abs() < 1e-9, "util {}", m.utilization);
        assert!((m.work_proc_secs - 400.0).abs() < 1e-9);
        // Waits 0+100+200+300.
        assert!((m.mean_wait - 150.0).abs() < 1e-9);
    }

    #[test]
    fn idle_gaps_reduce_utilization() {
        let mut sim = Simulation::new(MachineConfig::single_queue(2), SchedulerPolicy::Fcfs);
        let traces = sim.run_jobs(vec![job(0, 0, 1, 100), job(1, 1000, 1, 100)]);
        let m = machine_metrics(&traces, 2).unwrap();
        // 200 proc-s of work over (1100 - 0) * 2 proc-s available.
        assert!((m.utilization - 200.0 / 2200.0).abs() < 1e-9);
        assert_eq!(m.mean_wait, 0.0);
    }

    #[test]
    fn bounded_slowdown_floors_short_jobs() {
        let mut sim = Simulation::new(MachineConfig::single_queue(1), SchedulerPolicy::Fcfs);
        // A 1-second job waiting 100 s: raw slowdown 101, bounded (100+1)/10.
        let traces = sim.run_jobs(vec![job(0, 0, 1, 100), job(1, 0, 1, 1)]);
        let m = machine_metrics(&traces, 1).unwrap();
        // Job 0: max(1, 100/100) = 1; job 1: (100 + 1)/10 = 10.1.
        assert!((m.mean_bounded_slowdown - (1.0 + 10.1) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_traces_yield_none() {
        assert!(machine_metrics(&[Trace::new("m", "q")], 8).is_none());
    }

    #[test]
    fn slo_miss_rate_counts_exact_budget_overruns() {
        use crate::engine::StartRecord;
        let deadline = DeadlineConfig { base: 100, factor: 1 };
        let jobs = vec![job(0, 0, 1, 50), job(1, 10, 1, 50)];
        // Budgets: 150 each. Job 0 waits exactly 150 (on the line: a hit);
        // job 1 waits 151 (a miss).
        let starts = vec![
            StartRecord { job_id: 0, start: 150 },
            StartRecord { job_id: 1, start: 161 },
        ];
        let rate = slo_miss_rate(&jobs, &starts, deadline).unwrap();
        assert!((rate - 0.5).abs() < 1e-12, "rate {rate}");
        assert!(slo_miss_rate(&jobs, &[], deadline).is_none());
    }

    #[test]
    fn backfill_improves_slowdown_on_mixed_load() {
        let jobs: Vec<SimJob> = (0..60)
            .map(|i| job(i, i * 40, 1 + (i as u32 * 7) % 10, 150 + (i * 131) % 2500))
            .collect();
        let run = |policy| {
            let mut sim = Simulation::new(MachineConfig::single_queue(10), policy);
            let traces = sim.run_jobs(jobs.clone());
            machine_metrics(&traces, 10).unwrap()
        };
        let fcfs = run(SchedulerPolicy::Fcfs);
        let easy = run(SchedulerPolicy::EasyBackfill);
        assert!(
            easy.mean_bounded_slowdown <= fcfs.mean_bounded_slowdown + 1e-9,
            "easy {} vs fcfs {}",
            easy.mean_bounded_slowdown,
            fcfs.mean_bounded_slowdown
        );
    }
}
