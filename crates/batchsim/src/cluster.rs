//! Processor allocation state for the space-shared machine.
//!
//! A [`Cluster`] tracks how many processors are free and, for every running
//! job, when the *scheduler believes* it will finish (the user estimate).
//! Backfill reservations are computed from those estimated finishes — using
//! true runtimes would be an information leak the real systems don't have.

use std::collections::HashMap;

/// Allocation bookkeeping for one machine.
#[derive(Debug, Clone)]
pub struct Cluster {
    capacity: u32,
    free: u32,
    /// job id -> (estimated finish time, procs)
    running: HashMap<u64, (u64, u32)>,
}

impl Cluster {
    /// Creates an idle cluster.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            free: capacity,
            running: HashMap::new(),
        }
    }

    /// Total processors.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Currently free processors.
    pub fn free(&self) -> u32 {
        self.free
    }

    /// Number of running jobs.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Whether a job of `procs` processors can start right now.
    pub fn fits(&self, procs: u32) -> bool {
        procs <= self.free
    }

    /// Starts a job: dedicates `procs` processors until released.
    ///
    /// # Panics
    ///
    /// Panics if the job does not fit, `procs` is zero, or the id is already
    /// running — all of which indicate scheduler bugs, not recoverable
    /// states.
    pub fn allocate(&mut self, id: u64, procs: u32, est_finish: u64) {
        assert!(procs > 0, "job must request at least one processor");
        assert!(
            self.fits(procs),
            "allocation of {procs} procs exceeds {} free",
            self.free
        );
        let prev = self.running.insert(id, (est_finish, procs));
        assert!(prev.is_none(), "job {id} is already running");
        self.free -= procs;
    }

    /// Finishes a job, returning its processors to the free pool. Returns
    /// the job's `(estimated_finish, procs)` so callers maintaining an
    /// availability profile can retire the matching release point.
    ///
    /// # Panics
    ///
    /// Panics if the id is not running.
    pub fn release(&mut self, id: u64) -> (u64, u32) {
        let (est_finish, procs) = self
            .running
            .remove(&id)
            .unwrap_or_else(|| panic!("job {id} is not running"));
        self.free += procs;
        debug_assert!(self.free <= self.capacity);
        (est_finish, procs)
    }

    /// Every running job as `(id, estimated_finish, procs)`, in arbitrary
    /// order — the input for rebuilding an availability profile.
    pub fn running_jobs(&self) -> impl Iterator<Item = (u64, u64, u32)> + '_ {
        self.running.iter().map(|(&id, &(est, procs))| (id, est, procs))
    }

    /// Estimated `(finish_time, procs)` pairs of all running jobs, sorted by
    /// finish time — the input to backfill reservation computations.
    pub fn estimated_releases(&self) -> Vec<(u64, u32)> {
        let mut v: Vec<(u64, u32)> = self.running.values().copied().collect();
        v.sort_unstable();
        v
    }

    /// Earliest time at which at least `procs` processors will be free,
    /// assuming running jobs end at their *estimated* finishes and nothing
    /// new starts. Also returns how many processors will be free then.
    ///
    /// Returns `(now, free)` immediately if the job already fits.
    pub fn earliest_fit(&self, procs: u32, now: u64) -> (u64, u32) {
        if self.fits(procs) {
            return (now, self.free);
        }
        let mut free = self.free;
        for (finish, p) in self.estimated_releases() {
            free += p;
            if free >= procs {
                return (finish.max(now), free);
            }
        }
        // Unreachable for jobs within machine capacity; guard anyway.
        (u64::MAX, self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut c = Cluster::new(100);
        c.allocate(1, 60, 1000);
        assert_eq!(c.free(), 40);
        assert!(c.fits(40));
        assert!(!c.fits(41));
        c.allocate(2, 40, 2000);
        assert_eq!(c.free(), 0);
        c.release(1);
        assert_eq!(c.free(), 60);
        c.release(2);
        assert_eq!(c.free(), 100);
        assert_eq!(c.running_count(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn over_allocation_panics() {
        let mut c = Cluster::new(10);
        c.allocate(1, 11, 100);
    }

    #[test]
    #[should_panic(expected = "already running")]
    fn duplicate_id_panics() {
        let mut c = Cluster::new(10);
        c.allocate(1, 2, 100);
        c.allocate(1, 2, 200);
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn release_unknown_panics() {
        Cluster::new(10).release(99);
    }

    #[test]
    fn earliest_fit_walks_estimated_releases() {
        let mut c = Cluster::new(100);
        c.allocate(1, 50, 1000);
        c.allocate(2, 30, 500);
        c.allocate(3, 20, 2000);
        // 0 free now; need 60: after t=500 -> 30 free, after t=1000 -> 80.
        let (t, free) = c.earliest_fit(60, 0);
        assert_eq!(t, 1000);
        assert_eq!(free, 80);
        // Need 90: only after everything ends.
        let (t, _) = c.earliest_fit(90, 0);
        assert_eq!(t, 2000);
        // Fits immediately.
        c.release(1);
        let (t, free) = c.earliest_fit(50, 42);
        assert_eq!((t, free), (42, 50));
    }

    #[test]
    fn earliest_fit_respects_now() {
        let mut c = Cluster::new(10);
        c.allocate(1, 10, 100);
        // Release is estimated before `now`: earliest fit is now.
        let (t, _) = c.earliest_fit(5, 500);
        assert_eq!(t, 500);
    }
}
