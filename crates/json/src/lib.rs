//! # qdelay-json
//!
//! A small, dependency-free JSON value with a strict parser, a stable
//! pretty-printer, and an incremental newline-delimited [`Reader`], used
//! for the workspace's committed result artifacts
//! (`results_tables34.json`, `results_tables567.json`), the determinism
//! tests that require *byte-identical* serialization across worker counts,
//! and the `qdelay-serve` wire protocol.
//!
//! Design points that matter to the callers:
//!
//! * **Objects preserve insertion order** (`Vec<(String, Json)>`, not a
//!   hash map), so serialization order is a function of construction order
//!   only — a prerequisite for byte-identical output.
//! * **Numbers are `f64`** and print via Rust's shortest-round-trip
//!   formatting; integral values within the exact-`f64` range print without
//!   a fractional part. Parsing followed by printing is idempotent.
//! * The parser is strict RFC-8259 (no comments, no trailing commas): the
//!   committed artifacts are machine-written, so leniency only hides bugs.
//!
//! # Examples
//!
//! ```
//! use qdelay_json::Json;
//!
//! let v = Json::parse(r#"{"jobs": 3, "ok": true, "ratio": 0.5}"#).unwrap();
//! assert_eq!(v.get("jobs").and_then(Json::as_f64), Some(3.0));
//! assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
//! let text = v.to_string_pretty();
//! assert_eq!(Json::parse(&text).unwrap(), v);
//! ```

mod reader;

pub use reader::{ReadError, Reader, ValueMeta, DEFAULT_MAX_LINE};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always an `f64`; integral values print without a
    /// fraction).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved exactly as constructed/parsed.
    Obj(Vec<(String, Json)>),
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    offset: usize,
}

impl JsonError {
    fn new(message: impl Into<String>, offset: usize) -> Self {
        Self {
            message: message.into(),
            offset,
        }
    }

    /// Byte offset at which parsing failed.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with the byte offset of the first violation.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::new("trailing characters", pos));
        }
        Ok(value)
    }

    /// Member lookup on objects (`None` for other kinds or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an exact non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes with two-space indentation (the format of the committed
    /// result artifacts). Deterministic: identical values produce identical
    /// bytes.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, 0, true, &mut out);
        out
    }

    /// Serializes without any whitespace.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, 0, false, &mut out);
        out
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Self {
        Json::Num(x as f64)
    }
}

impl From<bool> for Json {
    fn from(x: bool) -> Self {
        Json::Bool(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

fn write_value(v: &Json, indent: usize, pretty: bool, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(x) => write_number(*x, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    push_indent(indent + 1, out);
                }
                write_value(item, indent + 1, pretty, out);
            }
            if pretty {
                out.push('\n');
                push_indent(indent, out);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    push_indent(indent + 1, out);
                }
                write_string(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(item, indent + 1, pretty, out);
            }
            if pretty {
                out.push('\n');
                push_indent(indent, out);
            }
            out.push('}');
        }
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(x: f64, out: &mut String) {
    use std::fmt::Write;
    if !x.is_finite() {
        // JSON has no NaN/Inf; the artifacts never contain them, but a
        // serializer must not emit invalid documents if one slips through.
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 9.007_199_254_740_992e15 {
        write!(out, "{}", x as i64).expect("write to String");
    } else {
        // `{:?}` is Rust's shortest round-trip float formatting.
        write!(out, "{x:?}").expect("write to String");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::new("unexpected end of input", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(JsonError::new(format!("expected `{keyword}`"), *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError::new("expected string key", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError::new("expected `:`", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(JsonError::new("expected `,` or `}`", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError::new("expected `,` or `]`", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    *pos += 1; // consume opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::new("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::new("truncated \\u escape", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::new("invalid \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::new("invalid \\u escape", *pos))?;
                        // Surrogate pairs are not needed by the artifacts;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError::new("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so boundaries are
                // valid).
                let rest = &bytes[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                let c = s.chars().next().expect("non-empty");
                if (c as u32) < 0x20 {
                    return Err(JsonError::new("unescaped control character", *pos));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| {
        let before = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        *pos > before
    };
    if !digits(bytes, pos) {
        return Err(JsonError::new("expected digit", *pos));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(bytes, pos) {
            return Err(JsonError::new("expected fraction digits", *pos));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err(JsonError::new("expected exponent digits", *pos));
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError::new("invalid number", start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("3.25").unwrap(), Json::Num(3.25));
        assert_eq!(Json::parse("-17").unwrap(), Json::Num(-17.0));
        assert_eq!(Json::parse("6.02e23").unwrap(), Json::Num(6.02e23));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x\ny"}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0], Json::Num(1.0));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x\ny"));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn round_trips_are_stable() {
        let src = r#"{"jobs": 1339, "fraction": 0.9716206123973115, "tags": ["a", "b"], "none": null, "flag": false}"#;
        let v = Json::parse(src).unwrap();
        let once = v.to_string_pretty();
        let twice = Json::parse(&once).unwrap().to_string_pretty();
        assert_eq!(once, twice);
        let compact = v.to_string_compact();
        assert_eq!(Json::parse(&compact).unwrap(), v);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for x in [
            0.9716206123973115,
            0.027948523845571536,
            35.78006500541712,
            1e-300,
            -2.5,
            1.0,
            0.0,
        ] {
            let text = Json::Num(x).to_string_compact();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back, x, "value {x} serialized as {text}");
        }
    }

    #[test]
    fn integral_values_print_without_fraction() {
        assert_eq!(Json::Num(1339.0).to_string_compact(), "1339");
        assert_eq!(Json::Num(-5.0).to_string_compact(), "-5");
        assert_eq!(Json::Num(0.5).to_string_compact(), "0.5");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{'a': 1}",
            "[01x]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\ttab \"quoted\" back\\slash \u{1}";
        let text = Json::Str(s.to_string()).to_string_compact();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn as_usize_requires_exact_integer() {
        assert_eq!(Json::Num(12.0).as_usize(), Some(12));
        assert_eq!(Json::Num(12.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Str("12".into()).as_usize(), None);
    }

    #[test]
    fn error_reports_offset() {
        let err = Json::parse("[1, 2, oops]").unwrap_err();
        assert_eq!(err.offset(), 7);
    }
}
