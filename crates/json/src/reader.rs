//! Incremental reading of newline-delimited JSON from a byte stream.
//!
//! The serve wire protocol is one JSON value per `\n`-terminated line over
//! a TCP connection. A connection is unbounded, so the whole stream can
//! never be buffered; [`Reader`] holds only the bytes of the line currently
//! being assembled, refilling from the underlying [`std::io::Read`] in
//! fixed-size chunks. A value split across any number of read boundaries is
//! reassembled transparently; a line that exceeds the configured limit is a
//! hard error (the caller should drop the peer — an unbounded line is
//! either a protocol violation or an attack).
//!
//! Strictness matches [`Json::parse`]: each line must hold *exactly one*
//! top-level value — trailing garbage after the value is rejected, not
//! skipped — because leniency on a wire protocol hides client bugs.
//! Lines that are empty or all-whitespace are skipped (they are the
//! natural artifact of `\r\n` peers and trailing newlines).

use crate::{Json, JsonError};
use std::io::Read;

/// Default cap on a single line, in bytes (1 MiB). Far above any legitimate
/// request, far below what an unterminated-line flood could buffer.
pub const DEFAULT_MAX_LINE: usize = 1 << 20;

/// Why [`Reader::read_value`] could not produce a value.
#[derive(Debug)]
pub enum ReadError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// A complete line was read but was not exactly one JSON value
    /// (malformed syntax, or trailing garbage after the value).
    Parse(JsonError),
    /// A line grew past the configured limit without a terminating newline.
    LineTooLong {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// A line held bytes that are not valid UTF-8.
    InvalidUtf8,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "read failed: {e}"),
            ReadError::Parse(e) => write!(f, "invalid JSON line: {e}"),
            ReadError::LineTooLong { limit } => {
                write!(f, "line exceeds {limit} bytes without a newline")
            }
            ReadError::InvalidUtf8 => write!(f, "line is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

/// Streaming parser for newline-delimited JSON values.
///
/// # Examples
///
/// ```
/// use qdelay_json::{Json, Reader};
///
/// let wire = b"{\"method\": \"predict\"}\n42\n".as_slice();
/// let mut reader = Reader::new(wire);
/// let first = reader.read_value().unwrap().unwrap();
/// assert_eq!(first.get("method").and_then(Json::as_str), Some("predict"));
/// assert_eq!(reader.read_value().unwrap(), Some(Json::Num(42.0)));
/// assert_eq!(reader.read_value().unwrap(), None); // clean end of stream
/// ```
#[derive(Debug)]
pub struct Reader<R: Read> {
    inner: R,
    /// Bytes received but not yet consumed; `start` indexes the first live
    /// byte (compacted on refill so the buffer never grows past one line
    /// plus one read chunk).
    buf: Vec<u8>,
    start: usize,
    max_line: usize,
    eof: bool,
}

impl<R: Read> Reader<R> {
    /// Wraps a byte stream with the [`DEFAULT_MAX_LINE`] limit.
    pub fn new(inner: R) -> Self {
        Self::with_max_line(inner, DEFAULT_MAX_LINE)
    }

    /// Wraps a byte stream with an explicit per-line byte limit.
    ///
    /// # Panics
    ///
    /// Panics if `max_line` is zero.
    pub fn with_max_line(inner: R, max_line: usize) -> Self {
        assert!(max_line > 0, "max_line must be positive");
        Self {
            inner,
            buf: Vec::new(),
            start: 0,
            max_line,
            eof: false,
        }
    }

    /// Gives back the underlying stream (any buffered-but-unparsed bytes
    /// are dropped).
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Reads the next value, blocking on the underlying stream as needed.
    ///
    /// Returns `Ok(None)` at a clean end of stream (all remaining bytes
    /// were whitespace). A final non-empty line *without* a terminating
    /// newline is parsed as a value — a file whose last line lacks `\n` is
    /// not an error.
    ///
    /// # Errors
    ///
    /// [`ReadError`]. Parse errors consume the offending line, so a caller
    /// that wants to answer a malformed request with a typed error and keep
    /// the connection open can simply call `read_value` again; `Io` and
    /// `LineTooLong` leave the stream unsynchronized and the caller should
    /// disconnect.
    pub fn read_value(&mut self) -> Result<Option<Json>, ReadError> {
        loop {
            match self.next_line_span()? {
                None => return Ok(None),
                Some((s, e)) => match parse_line(&self.buf[s..e])? {
                    Some(v) => return Ok(Some(v)),
                    None => continue, // blank line
                },
            }
        }
    }

    /// Like [`read_value`](Self::read_value), but also reports how long the
    /// parse itself took (socket wait excluded) and how many bytes the line
    /// held. This is the hook the serve layer's stage tracing uses to
    /// separate decode cost from read-blocking; `read_value` stays on the
    /// untimed path.
    pub fn read_value_meta(&mut self) -> Result<Option<(Json, ValueMeta)>, ReadError> {
        loop {
            match self.next_line_span()? {
                None => return Ok(None),
                Some((s, e)) => {
                    let t = std::time::Instant::now();
                    match parse_line(&self.buf[s..e])? {
                        Some(v) => {
                            let meta = ValueMeta {
                                parse_ns: t.elapsed().as_nanos() as u64,
                                line_bytes: e - s,
                            };
                            return Ok(Some((v, meta)));
                        }
                        None => continue, // blank line
                    }
                }
            }
        }
    }

    /// Buffers up to the next line terminator and returns the line's span in
    /// `self.buf`, consuming it. The span stays valid until the next call
    /// (refills compact the buffer). `None` is clean end of stream.
    fn next_line_span(&mut self) -> Result<Option<(usize, usize)>, ReadError> {
        loop {
            // A complete line already buffered?
            if let Some(nl) = self.buf[self.start..].iter().position(|&b| b == b'\n') {
                let line_end = self.start + nl;
                let line_start = self.start;
                self.start = line_end + 1;
                return Ok(Some((line_start, line_end)));
            }
            let pending = self.buf.len() - self.start;
            if self.eof {
                if pending == 0 {
                    return Ok(None);
                }
                // Final unterminated line.
                let line_start = self.start;
                self.start = self.buf.len();
                return Ok(Some((line_start, self.buf.len())));
            }
            if pending > self.max_line {
                return Err(ReadError::LineTooLong {
                    limit: self.max_line,
                });
            }
            // Compact, then pull the next chunk from the stream.
            if self.start > 0 {
                self.buf.drain(..self.start);
                self.start = 0;
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ReadError::Io(e)),
            }
        }
    }
}

/// Per-value decode measurements reported by [`Reader::read_value_meta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueMeta {
    /// Nanoseconds spent parsing the line (UTF-8 check + `Json::parse`),
    /// excluding any time blocked on the underlying stream.
    pub parse_ns: u64,
    /// Bytes in the line as received, excluding the terminating `\n`.
    pub line_bytes: usize,
}

/// Parses one line: exactly one value, or `None` if the line is blank.
fn parse_line(line: &[u8]) -> Result<Option<Json>, ReadError> {
    // Tolerate CRLF peers.
    let line = match line.split_last() {
        Some((b'\r', rest)) => rest,
        _ => line,
    };
    let text = std::str::from_utf8(line).map_err(|_| ReadError::InvalidUtf8)?;
    if text.trim().is_empty() {
        return Ok(None);
    }
    // Json::parse rejects trailing garbage after the top-level value, which
    // is exactly the per-line strictness the wire protocol needs.
    Json::parse(text).map(Some).map_err(ReadError::Parse)
}

impl<R: Read> Iterator for Reader<R> {
    type Item = Result<Json, ReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_value().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stream that serves a fixed byte string `chunk` bytes per read —
    /// the adversarial fragmentation a TCP stream is allowed to produce.
    struct Chunked<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
    }

    impl<'a> Chunked<'a> {
        fn new(data: &'a [u8], chunk: usize) -> Self {
            Self {
                data,
                pos: 0,
                chunk,
            }
        }
    }

    impl Read for Chunked<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            let n = self
                .chunk
                .min(out.len())
                .min(self.data.len() - self.pos);
            out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    const WIRE: &[u8] =
        b"{\"method\": \"observe\", \"wait\": 12.5}\n[1, 2, 3]\n\n  \n\"last\"\n";

    fn expected() -> Vec<Json> {
        vec![
            Json::parse(r#"{"method": "observe", "wait": 12.5}"#).unwrap(),
            Json::parse("[1, 2, 3]").unwrap(),
            Json::Str("last".into()),
        ]
    }

    #[test]
    fn values_split_across_every_read_boundary() {
        // Every chunk size from 1 byte up fragments the values differently;
        // all must reassemble to the same sequence.
        for chunk in [1usize, 2, 3, 5, 7, 16, 64, WIRE.len()] {
            let got: Vec<Json> = Reader::new(Chunked::new(WIRE, chunk))
                .collect::<Result<_, _>>()
                .unwrap_or_else(|e| panic!("chunk {chunk}: {e}"));
            assert_eq!(got, expected(), "chunk size {chunk}");
        }
    }

    #[test]
    fn multiple_values_in_one_read_are_all_delivered() {
        let mut r = Reader::new(WIRE);
        assert_eq!(r.read_value().unwrap(), Some(expected()[0].clone()));
        assert_eq!(r.read_value().unwrap(), Some(expected()[1].clone()));
        assert_eq!(r.read_value().unwrap(), Some(expected()[2].clone()));
        assert_eq!(r.read_value().unwrap(), None);
        // Idempotent at EOF.
        assert_eq!(r.read_value().unwrap(), None);
    }

    #[test]
    fn final_line_without_newline_is_a_value() {
        let mut r = Reader::new(b"{\"a\": 1}\n7".as_slice());
        assert!(r.read_value().unwrap().is_some());
        assert_eq!(r.read_value().unwrap(), Some(Json::Num(7.0)));
        assert_eq!(r.read_value().unwrap(), None);
    }

    #[test]
    fn crlf_lines_parse() {
        let mut r = Reader::new(b"true\r\nfalse\r\n".as_slice());
        assert_eq!(r.read_value().unwrap(), Some(Json::Bool(true)));
        assert_eq!(r.read_value().unwrap(), Some(Json::Bool(false)));
        assert_eq!(r.read_value().unwrap(), None);
    }

    #[test]
    fn trailing_garbage_after_value_is_rejected() {
        let mut r = Reader::new(b"{\"a\": 1} extra\n[2]\n".as_slice());
        assert!(matches!(r.read_value(), Err(ReadError::Parse(_))));
        // The offending line is consumed; the stream stays usable.
        assert_eq!(r.read_value().unwrap(), Some(Json::parse("[2]").unwrap()));
    }

    #[test]
    fn malformed_line_reports_parse_error_and_resyncs() {
        let mut r = Reader::new(b"{\"a\":\ntrue\n".as_slice());
        assert!(matches!(r.read_value(), Err(ReadError::Parse(_))));
        assert_eq!(r.read_value().unwrap(), Some(Json::Bool(true)));
    }

    #[test]
    fn oversized_line_is_rejected_before_buffering_it_all() {
        // 64 KiB of digits with no newline against a 1 KiB limit: the error
        // must fire after ~1 KiB + one chunk, not after buffering all 64 KiB.
        let data = vec![b'1'; 64 * 1024];
        let mut r = Reader::with_max_line(Chunked::new(&data, 512), 1024);
        match r.read_value() {
            Err(ReadError::LineTooLong { limit }) => assert_eq!(limit, 1024),
            other => panic!("expected LineTooLong, got {other:?}"),
        }
        assert!(
            r.buf.len() <= 1024 + 4096 + 512,
            "buffered {} bytes past the limit",
            r.buf.len()
        );
    }

    #[test]
    fn oversized_terminated_line_still_parses_within_buffered_window() {
        // A long-but-terminated line under the limit is fine.
        let mut data = b"[".to_vec();
        data.extend(std::iter::repeat_n(b"1,".as_slice(), 300).flatten());
        data.extend_from_slice(b"1]\n");
        let mut r = Reader::with_max_line(Chunked::new(&data, 7), 4096);
        let v = r.read_value().unwrap().unwrap();
        assert_eq!(v.as_array().unwrap().len(), 301);
    }

    #[test]
    fn invalid_utf8_is_a_typed_error() {
        let mut r = Reader::new(b"\"ok\"\n\xff\xfe\ntrue\n".as_slice());
        assert_eq!(r.read_value().unwrap(), Some(Json::Str("ok".into())));
        assert!(matches!(r.read_value(), Err(ReadError::InvalidUtf8)));
        assert_eq!(r.read_value().unwrap(), Some(Json::Bool(true)));
    }

    #[test]
    fn whitespace_only_stream_is_clean_eof() {
        let mut r = Reader::new(b"\n \n\t\n".as_slice());
        assert_eq!(r.read_value().unwrap(), None);
    }

    #[test]
    fn read_value_meta_reports_line_bytes_and_matches_read_value() {
        let mut r = Reader::new(WIRE);
        let want = expected();
        for (i, want_v) in want.iter().enumerate() {
            let (v, meta) = r.read_value_meta().unwrap().unwrap_or_else(|| {
                panic!("value {i} missing");
            });
            assert_eq!(&v, want_v, "value {i}");
            // line_bytes counts the raw line, newline excluded: the compact
            // rendering is never longer than what came over the wire.
            assert!(meta.line_bytes >= v.to_string_compact().len() - 2);
        }
        assert_eq!(r.read_value_meta().unwrap(), None);
        // Blank/whitespace lines are skipped, same as read_value.
        let mut r = Reader::new(b"\n  \n41\n".as_slice());
        let (v, meta) = r.read_value_meta().unwrap().unwrap();
        assert_eq!(v, Json::Num(41.0));
        assert_eq!(meta.line_bytes, 2);
    }

    #[test]
    fn iterator_yields_values_then_stops() {
        let items: Vec<_> = Reader::new(b"1\n2\n3\n".as_slice()).collect();
        assert_eq!(items.len(), 3);
        assert!(items.iter().all(|i| i.is_ok()));
    }
}
