//! The Figure 1 scenario as a user-facing tool: given live wait histories
//! from two sites, decide where to submit.
//!
//! The paper's motivating observation: on 2005-02-24 a user choosing
//! between SDSC Datastar and TACC Lonestar could have known — with 95%
//! confidence — that a "normal"-queue job would start within seconds at
//! TACC but might wait days at SDSC. Grid-era schedulers needed exactly
//! this comparison.
//!
//! Run with: `cargo run --example site_comparison`

use qdelay::predict::{bmbp::Bmbp, QuantilePredictor};
use qdelay::trace::catalog;
use qdelay::trace::synth::{self, SynthSettings};

fn main() {
    let settings = SynthSettings::with_seed(2005);
    let sites = [("datastar", "normal"), ("tacc2", "normal")];

    println!("site comparison — 95/95 upper bounds on queue wait\n");
    let mut bounds = Vec::new();
    for (machine, queue) in sites {
        let profile = catalog::find(machine, queue).expect("catalog row");
        let trace = synth::generate(&profile, &settings);

        // Feed the predictor everything that started before the decision
        // point (three quarters into the trace).
        let (first, last) = trace.span().expect("non-empty trace");
        let decision_time = first + (last - first) * 3 / 4;
        let mut predictor = Bmbp::with_defaults();
        let mut seen = 0usize;
        for job in &trace {
            if job.start_time() <= decision_time as f64 {
                predictor.observe(job.wait_secs);
                seen += 1;
            }
        }
        predictor.refit();
        let bound = predictor
            .current_bound()
            .value()
            .expect("catalog traces dwarf the 59-job minimum");
        println!(
            "  {machine:>9}/{queue}: {seen} historical jobs -> bound {bound:.0} s ({})",
            human(bound)
        );
        bounds.push((machine, bound));
    }

    bounds.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite bounds"));
    let (best, best_bound) = bounds[0];
    let (worst, worst_bound) = bounds[bounds.len() - 1];
    println!(
        "\nsubmit to {best}: its worst-case wait ({}) beats {worst}'s ({}) by {}x",
        human(best_bound),
        human(worst_bound),
        (worst_bound / best_bound.max(1.0)).round()
    );
    println!("(both predictions are wrong at most 1 time in 20, by construction)");
}

fn human(secs: f64) -> String {
    if secs < 120.0 {
        format!("{secs:.0} s")
    } else if secs < 7200.0 {
        format!("{:.0} min", secs / 60.0)
    } else if secs < 172_800.0 {
        format!("{:.1} h", secs / 3600.0)
    } else {
        format!("{:.1} days", secs / 86_400.0)
    }
}
