//! Quickstart: predict a 95%-confidence upper bound on queue wait from a
//! history of observed waits — the paper's headline capability in ~30
//! lines.
//!
//! Run with: `cargo run --example quickstart`

use qdelay::predict::{bmbp::Bmbp, BoundSpec, QuantilePredictor};

fn main() {
    // In a real deployment these come from your batch scheduler's log:
    // the queue waits, in seconds, of jobs that have already started.
    // Here: a bursty, heavy-tailed series like real queues produce.
    let observed_waits: Vec<f64> = (0..240)
        .map(|i| {
            let burst = if i % 37 == 0 { 50.0 } else { 1.0 };
            ((i % 13) as f64 * 90.0 + 5.0) * burst
        })
        .collect();

    // The paper's configuration: bound the 0.95 quantile with 95% confidence.
    let mut predictor = Bmbp::with_defaults();
    for &w in &observed_waits {
        predictor.observe(w);
    }
    predictor.refit();

    match predictor.current_bound().value() {
        Some(bound) => {
            println!("history: {} completed jobs", observed_waits.len());
            println!(
                "with 95% confidence, a job submitted now starts within {bound:.0} s \
                 ({:.1} h)",
                bound / 3600.0
            );
        }
        None => println!("need at least 59 observations for a 95/95 bound"),
    }

    // The same history answers other questions, too.
    let median_spec = BoundSpec::new(0.5, 0.95).expect("valid spec");
    if let Some(median_bound) = predictor.upper_bound_for(median_spec).value() {
        println!("... and the *median* wait is at most {median_bound:.0} s (95% conf.)");
    }
    let lower = BoundSpec::new(0.25, 0.95).expect("valid spec");
    if let Some(lo) = predictor.lower_bound_for(lower).value() {
        println!("... while a quarter of jobs wait at least {lo:.0} s (95% conf.)");
    }
}
