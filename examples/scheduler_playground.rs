//! Scheduler playground: how the space-sharing discipline shapes the queue
//! waits BMBP has to predict.
//!
//! Runs identical workloads through strict FCFS, EASY backfill, and
//! conservative backfill on the same machine, prints the resulting wait
//! statistics per queue, and shows the BMBP bound each regime produces.
//!
//! Run with: `cargo run --release --example scheduler_playground`

use qdelay::batchsim::engine::Simulation;
use qdelay::batchsim::policy::SchedulerPolicy;
use qdelay::batchsim::workload::WorkloadConfig;
use qdelay::batchsim::{MachineConfig, QueueSpec};
use qdelay::predict::{bmbp::Bmbp, QuantilePredictor};

fn main() {
    let machine = MachineConfig {
        procs: 128,
        queues: vec![
            QueueSpec::new("normal", 5),
            QueueSpec::new("short", 10)
                .with_max_runtime(3_600)
                .with_max_procs(16),
        ],
    };
    // ~80 jobs/day of heavy-tailed work keeps this 128-proc machine busy
    // (contended, real queueing) while staying drainable; much beyond that
    // the offered load exceeds capacity and waits diverge for every policy.
    let workload = WorkloadConfig {
        days: 30,
        jobs_per_day: 80.0,
        seed: 99,
        queue_weights: Some(vec![3.0, 1.0]),
        ..WorkloadConfig::default()
    };

    println!("identical 30-day workload, three scheduling disciplines:\n");
    for policy in [
        SchedulerPolicy::Fcfs,
        SchedulerPolicy::EasyBackfill,
        SchedulerPolicy::ConservativeBackfill,
    ] {
        // Reset so each policy's counters and peak-depth gauge are its own
        // (the queue-depth gauge is a process-wide running max otherwise).
        qdelay::telemetry::reset();
        let mut sim = Simulation::new(machine.clone(), policy);
        let traces = sim.run(&workload);
        let after = qdelay::telemetry::snapshot();
        println!("{policy:?}:");
        let depth_peak = after.gauge("batchsim.queue_depth_peak").unwrap_or(0);
        if policy == SchedulerPolicy::ConservativeBackfill {
            let fast = after
                .counter("batchsim.profile.incremental_passes")
                .unwrap_or(0);
            let replaced = after.counter("batchsim.profile.replacements").unwrap_or(0);
            let points_peak = after.gauge("batchsim.profile.points").unwrap_or(0);
            println!(
                "  availability profile: {fast} incremental passes, {replaced} full \
                 re-placements, {points_peak} points at peak; peak queue depth {depth_peak}"
            );
        } else {
            println!("  peak queue depth {depth_peak}");
        }
        for trace in &traces {
            let s = trace.summary().expect("populated queues");
            let mut bmbp = Bmbp::with_defaults();
            for j in trace {
                bmbp.observe(j.wait_secs);
            }
            bmbp.refit();
            let bound = bmbp
                .current_bound()
                .value()
                .map_or("-".to_string(), |b| format!("{b:.0}"));
            println!(
                "  {:>7}: {:>6} jobs  mean {:>8.1}s  median {:>7.1}s  95/95 bound {:>8}s",
                trace.queue(),
                s.count,
                s.mean,
                s.median,
                bound
            );
        }
        println!();
    }
    println!("expected shape: backfill slashes mean waits versus FCFS, the");
    println!("high-priority 'short' queue stays fast under every discipline,");
    println!("and the BMBP bound tracks each regime's tail.");
}
