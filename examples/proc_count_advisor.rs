//! The Figure 2 scenario: advise a user on how many processors to request.
//!
//! Conventional wisdom says smaller jobs backfill sooner — but the paper
//! found a month where Datastar *favored large jobs*, and BMBP forecast it
//! correctly from the per-size wait histories alone. This example
//! recreates that situation mechanistically with the cluster simulator: an
//! administrator quietly boosts large-job priority, and the advisor notices.
//!
//! Run with: `cargo run --release --example proc_count_advisor`

use qdelay::batchsim::engine::Simulation;
use qdelay::batchsim::policy::{PolicyChange, PolicySchedule, SchedulerPolicy};
use qdelay::batchsim::workload::WorkloadConfig;
use qdelay::batchsim::MachineConfig;
use qdelay::predict::{bmbp::Bmbp, QuantilePredictor};
use qdelay::trace::{ProcRange, Trace};

const DAY: u64 = 86_400;

fn main() {
    // 90 simulated days on a contended 256-proc machine; from day 30 the
    // administrators quietly favor large jobs: a priority boost plus a
    // switch from conservative backfill to strict priority-order FCFS, so
    // small jobs can no longer jump ahead of the boosted large ones.
    let mut schedule = PolicySchedule::new();
    schedule.add(
        30 * DAY,
        PolicyChange::SetPolicy(SchedulerPolicy::Fcfs),
    );
    schedule.add(
        30 * DAY,
        PolicyChange::SetLargeJobBoost {
            min_procs: 17,
            boost: 1_000,
        },
    );
    let mut sim = Simulation::new(
        MachineConfig::single_queue(256),
        SchedulerPolicy::ConservativeBackfill,
    )
    .with_schedule(schedule);
    let workload = WorkloadConfig {
        days: 90,
        jobs_per_day: 140.0, // ~75% utilization of the 256-proc machine
        proc_mix: qdelay::trace::synth::ProcMix::new([0.50, 0.30, 0.18, 0.02]),
        seed: 42,
        ..WorkloadConfig::default()
    };
    println!("simulating 90 days of a 256-proc machine (priority shift at day 30)...\n");
    let traces = sim.run(&workload);
    let queue = &traces[0];

    for (label, until) in [
        ("month 1 (no favoritism)", 30 * DAY),
        ("month 2 (favoritism begins; backlog flushes)", 60 * DAY),
        ("month 3 (favoritism steady state)", 90 * DAY),
    ] {
        let from = until - 30 * DAY;
        println!("{label}:");
        let mut advice: Vec<(ProcRange, f64)> = Vec::new();
        for range in [ProcRange::R1To4, ProcRange::R17To64] {
            if let Some(bound) = bound_for_window(queue, range, from, until) {
                println!("  {range:>6} procs -> 95/95 wait bound {bound:.0} s");
                advice.push((range, bound));
            }
        }
        if let [a, b] = advice[..] {
            let (winner, factor) = if a.1 <= b.1 {
                (a.0, b.1 / a.1.max(1.0))
            } else {
                (b.0, a.1 / b.1.max(1.0))
            };
            println!("  advice: request {winner} processors ({factor:.1}x shorter worst case)\n");
        }
    }
    println!("the advisor flips its recommendation when the hidden policy changes —");
    println!("exactly the forecast the paper highlights in Figure 2.");
}

/// BMBP bound over the waits of `range`-sized jobs that started in the
/// window.
fn bound_for_window(trace: &Trace, range: ProcRange, from: u64, until: u64) -> Option<f64> {
    let mut predictor = Bmbp::with_defaults();
    for job in &trace.filter_procs(range) {
        let start = job.start_time();
        if start >= from as f64 && start < until as f64 {
            predictor.observe(job.wait_secs);
        }
    }
    predictor.refit();
    predictor.current_bound().value()
}
