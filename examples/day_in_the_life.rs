//! The Table 8 scenario: a rolling multi-quantile picture of one queue over
//! one day — "what should I expect if I submit right now?"
//!
//! Every two hours the example prints a 95%-confidence *lower* bound on the
//! 0.25 quantile and *upper* bounds on the 0.5, 0.75 and 0.95 quantiles of
//! queue delay, from the live BMBP history.
//!
//! Run with: `cargo run --example day_in_the_life`

use qdelay::sim::snapshots::{quantile_panels, SnapshotConfig};
use qdelay::trace::catalog;
use qdelay::trace::synth::{self, SynthSettings};

fn main() {
    let profile = catalog::find("datastar", "normal").expect("catalog row");
    let trace = synth::generate(&profile, &SynthSettings::with_seed(505));

    // A day one month into the trace (the paper uses 2004-05-05).
    let day = profile.start_unix + 34 * 86_400;
    let panels = quantile_panels(
        &trace,
        &SnapshotConfig {
            start: day,
            end: day + 86_400,
            step: 7_200,
            confidence: 0.95,
        },
    );

    println!("one day in the life of datastar/normal (all values in seconds)\n");
    println!("{:>5}  {:>12} {:>12} {:>12} {:>12}", "hour", "q25(lower)", "q50(upper)", "q75(upper)", "q95(upper)");
    for p in &panels {
        let hour = (p.time - day) / 3600;
        let f = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.0}"));
        println!(
            "{hour:>5}  {:>12} {:>12} {:>12} {:>12}",
            f(p.lower_q25),
            f(p.upper_q50),
            f(p.upper_q75),
            f(p.upper_q95)
        );
    }

    // Interpret the last panel the way the paper reads its table.
    if let Some(last) = panels.last() {
        if let (Some(q50), Some(q75)) = (last.upper_q50, last.upper_q75) {
            println!("\nby end of day: 50% of jobs should start within {q50:.0} s,");
            println!("and there is at least a 75% chance of starting within {q75:.0} s.");
        }
    }
}
